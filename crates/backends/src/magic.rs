//! The `magic` backend: a MAGIC/IMPLY-style memristive NOR sketch.
//!
//! MAGIC (Memristor-Aided loGIC) realizes an N-input NOR in a memristor
//! crossbar: the output device is first initialized to logic `1`, then one
//! voltage pulse across the input devices conditionally switches it to `0`
//! whenever any input holds `1`. Emission decomposes each RM3-shaped IR op
//! `z ← ⟨a b̄ z⟩` into seven NORs over six scratch devices, exploiting that
//! the majority's complemented input is stored uninverted in the IR:
//!
//! ```text
//! x1 = nor(a)           = ¬a
//! x2 = nor(z)           = ¬z_old
//! w1 = nor(x1, b)       = a ∧ ¬b
//! w2 = nor(x1, x2)      = a ∧ z_old
//! w3 = nor(b, x2)       = ¬b ∧ z_old
//! o  = nor(w1, w2, w3)  = ¬⟨a b̄ z_old⟩
//! z  = nor(o)           = ⟨a b̄ z_old⟩
//! ```
//!
//! Every NOR is preceded by the mandatory `set` of its output device, so a
//! non-masking op costs 14 pulses; masking ops (the reset/set idioms)
//! collapse to a single initialization of the destination. Cell placement
//! reuses the compiler's allocator replay; the six scratch devices live
//! above the work region. The cost model counts **pulses** (every
//! instruction is one).
//!
//! This is deliberately a sketch: constants ride along as NOR inputs
//! instead of being strapped to reference devices, and device variability
//! is out of scope. It exists to prove the backend seam carries a
//! fundamentally different instruction set end-to-end, executor included.

use std::fmt::Write as _;

use plim_compiler::ir::{Event, IrProgram, Value};
use plim_compiler::{Artifact, Backend, Cost, InstructionInfo};

use crate::rows::{
    assign_rows, lower_outputs, poisoned_rows, read_outputs, render_outputs, OutLoc,
};

/// What a NOR input reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// A constant reference level.
    Const(bool),
    /// A primary input device.
    Input(u32),
    /// A work or scratch device.
    Cell(u32),
}

/// One MAGIC instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    /// Initialize a device to logic 1 (the pre-NOR `set`).
    Set(u32),
    /// Initialize a device to logic 0.
    Reset(u32),
    /// `dst ← ¬(src₁ ∨ …)`; the device must have been `set` first.
    Nor(Vec<Src>, u32),
}

/// The MAGIC backend's instruction set.
const MAGIC_ISA: [InstructionInfo; 3] = [
    InstructionInfo {
        mnemonic: "set",
        cost: 1,
        summary: "initialize the output memristor to logic 1 (one pulse)",
    },
    InstructionInfo {
        mnemonic: "reset",
        cost: 1,
        summary: "initialize the output memristor to logic 0 (one pulse)",
    },
    InstructionInfo {
        mnemonic: "nor",
        cost: 1,
        summary: "dst ← ¬(src₁ ∨ …): one MAGIC NOR pulse onto a set device",
    },
];

/// The MAGIC/IMPLY-style memristive NOR backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct MagicBackend;

impl Backend for MagicBackend {
    fn name(&self) -> &'static str {
        "magic"
    }

    fn description(&self) -> &'static str {
        "memristive NOR crossbar sketch (MAGIC-style, 7 NORs per majority)"
    }

    fn instruction_set(&self) -> &'static [InstructionInfo] {
        &MAGIC_ISA
    }

    fn cost(&self, ir: &IrProgram) -> Cost {
        lower(ir).cost
    }

    fn emit(&self, ir: &IrProgram) -> Box<dyn Artifact> {
        Box::new(lower(ir))
    }
}

/// An emitted MAGIC program.
#[derive(Debug, Clone)]
pub struct MagicArtifact {
    num_inputs: usize,
    /// Total devices: work region plus the six scratch devices.
    cells: u32,
    ops: Vec<Op>,
    outputs: Vec<(String, OutLoc)>,
    cost: Cost,
}

/// Lowers the IR event stream onto the NOR crossbar.
fn lower(ir: &IrProgram) -> MagicArtifact {
    let rows = assign_rows(ir);
    // Scratch devices, in decomposition order.
    let [x1, x2, w1, w2, w3, o] = [0, 1, 2, 3, 4, 5].map(|k| rows.work_rows + k);
    let mut ops = Vec::new();
    let mut uses_scratch = false;
    let src = |value: Value, rows: &crate::rows::Rows| match value {
        Value::Const(v) => Src::Const(v),
        Value::Input(i) => Src::Input(i),
        Value::Cell(c) => Src::Cell(rows.cell_row[c.index()]),
    };
    for &event in &ir.events {
        let Event::Op(index) = event else { continue };
        let op = &ir.ops[index as usize];
        let z = rows.cell_row[op.z.index()];
        if op.masking() {
            let Value::Const(v) = op.a else {
                unreachable!("masking ops have constant operands")
            };
            ops.push(if v { Op::Set(z) } else { Op::Reset(z) });
            continue;
        }
        uses_scratch = true;
        let a = src(op.a, &rows);
        let b = src(op.b, &rows);
        let nor = |dst: u32, srcs: Vec<Src>, ops: &mut Vec<Op>| {
            ops.push(Op::Set(dst));
            ops.push(Op::Nor(srcs, dst));
        };
        nor(x1, vec![a], &mut ops);
        nor(x2, vec![Src::Cell(z)], &mut ops);
        nor(w1, vec![Src::Cell(x1), b], &mut ops);
        nor(w2, vec![Src::Cell(x1), Src::Cell(x2)], &mut ops);
        nor(w3, vec![b, Src::Cell(x2)], &mut ops);
        nor(
            o,
            vec![Src::Cell(w1), Src::Cell(w2), Src::Cell(w3)],
            &mut ops,
        );
        nor(z, vec![Src::Cell(o)], &mut ops);
    }
    let total_cells = rows.work_rows + if uses_scratch { 6 } else { 0 };

    let mut writes = vec![0u64; total_cells as usize];
    for op in &ops {
        let (Op::Set(d) | Op::Reset(d) | Op::Nor(_, d)) = op;
        writes[*d as usize] += 1;
    }
    let cost = Cost {
        instructions: ops.len(),
        footprint: total_cells,
        wear: writes.iter().copied().max().unwrap_or(0),
        // Every instruction is a single pulse.
        units: ops.len() as u64,
    };
    MagicArtifact {
        num_inputs: ir.num_inputs,
        cells: total_cells,
        outputs: lower_outputs(ir, &rows),
        ops,
        cost,
    }
}

impl Artifact for MagicArtifact {
    fn target(&self) -> &'static str {
        "magic"
    }

    fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn cost(&self) -> Cost {
        self.cost
    }

    fn listing(&self) -> String {
        let mut out = String::from(".magic v1\n");
        let _ = writeln!(out, ".inputs {}", self.num_inputs);
        let _ = writeln!(out, ".cells {} (6 scratch)", self.cells);
        let width = self.ops.len().to_string().len().max(2);
        let src = |s: &Src| match *s {
            Src::Const(v) => format!("{}", u8::from(v)),
            Src::Input(i) => format!("i{}", i + 1),
            Src::Cell(r) => format!("r{r}"),
        };
        for (index, op) in self.ops.iter().enumerate() {
            let text = match op {
                Op::Set(d) => format!("set r{d}"),
                Op::Reset(d) => format!("reset r{d}"),
                Op::Nor(srcs, d) => {
                    let args: Vec<String> = srcs.iter().map(src).collect();
                    format!("nor {} r{d}", args.join(" "))
                }
            };
            let _ = writeln!(out, "{:0width$}: {text}", index + 1);
        }
        render_outputs(&mut out, &self.outputs);
        out
    }

    fn stats_text(&self) -> String {
        format!(
            "target=magic ops={} cells={} maxw={} pulses={}\n",
            self.cost.instructions, self.cost.footprint, self.cost.wear, self.cost.units
        )
    }

    fn output_names(&self) -> Vec<String> {
        self.outputs.iter().map(|(name, _)| name.clone()).collect()
    }

    fn run_wide(&self, inputs: &[u64]) -> Result<Vec<u64>, String> {
        if inputs.len() != self.num_inputs {
            return Err(format!(
                "expected {} input words, got {}",
                self.num_inputs,
                inputs.len()
            ));
        }
        let mut cells = poisoned_rows(self.cells);
        let read = |s: &Src, cells: &[u64]| match *s {
            Src::Const(v) => {
                if v {
                    u64::MAX
                } else {
                    0
                }
            }
            Src::Input(i) => inputs[i as usize],
            Src::Cell(r) => cells[r as usize],
        };
        for op in &self.ops {
            match op {
                Op::Set(d) => cells[*d as usize] = u64::MAX,
                Op::Reset(d) => cells[*d as usize] = 0,
                Op::Nor(srcs, d) => {
                    let or = srcs.iter().fold(0u64, |acc, s| acc | read(s, &cells));
                    cells[*d as usize] = !or;
                }
            }
        }
        Ok(read_outputs(&self.outputs, &cells, inputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim_compiler::verify::verify_exhaustive_artifact;
    use plim_compiler::{compile_full, CompilerOptions, OptLevel};

    fn xor5() -> mig::Mig {
        let mut mig = mig::Mig::new();
        let xs = mig.add_inputs("x", 5);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("parity", acc);
        mig.add_output("nparity", !acc);
        mig
    }

    #[test]
    fn emits_equivalent_programs_at_every_opt_level() {
        let mig = xor5();
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let compilation = compile_full(&mig, CompilerOptions::new().opt(opt));
            let artifact = MagicBackend.emit(&compilation.ir);
            verify_exhaustive_artifact(&mig, artifact.as_ref()).unwrap();
        }
    }

    #[test]
    fn seven_nors_per_non_masking_op() {
        let mig = xor5();
        let compilation = compile_full(&mig, CompilerOptions::new());
        let artifact = MagicBackend.emit(&compilation.ir);
        let cost = artifact.cost();
        assert_eq!(MagicBackend.cost(&compilation.ir), cost);
        assert_eq!(cost.units, cost.instructions as u64);
        // Between 1 (all masking) and 14 (all general) pulses per RM3 op.
        let rm3 = compilation.compiled.stats.instructions;
        assert!(cost.instructions >= rm3 && cost.instructions <= 14 * rm3);
        let listing = artifact.listing();
        assert!(listing.starts_with(".magic v1\n"), "{listing}");
        assert!(listing.contains("nor "), "{listing}");
        assert_eq!(artifact.target(), "magic");
    }

    #[test]
    fn run_wide_rejects_wrong_input_counts() {
        let mig = xor5();
        let compilation = compile_full(&mig, CompilerOptions::new());
        let artifact = MagicBackend.emit(&compilation.ir);
        assert!(artifact.run_wide(&[0]).is_err());
    }
}
