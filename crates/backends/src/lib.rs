//! # plim-backends — alternative emission targets for the PLiM compiler
//!
//! The compiler's middle end is target-neutral: lowering and the pass
//! pipeline work on the [`plim_compiler::ir`] event stream, and only the
//! final emission step commits to an architecture. This crate provides two
//! non-RM3 implementations of the [`plim_compiler::Backend`] trait:
//!
//! * [`AmbitBackend`] (`ambit`) — an Ambit-style bulk-bitwise DRAM target:
//!   each IR majority step becomes RowClone copies into a designated
//!   triple-row group, one destructive triple-row activation (TRA)
//!   computing the bitwise majority, and a copy back. The cost model counts
//!   row activations.
//! * [`MagicBackend`] (`magic`) — a MAGIC/IMPLY-style memristive NOR
//!   sketch: each majority step is decomposed into seven NOR pulses over
//!   six scratch memristors, each preceded by the mandatory output-device
//!   initialization. The cost model counts pulses.
//!
//! Both backends reuse the compiler's allocator replay for deterministic
//! row/cell placement, execute their artifacts 64 input patterns at a time,
//! and are therefore provable against the source MIG with
//! [`plim_compiler::verify::verify_exhaustive_artifact`].
//!
//! Call [`install`] once (idempotent) to make the targets resolvable by
//! name through [`plim_compiler::Target`]; `plimc`, `plimd`, and the bench
//! harnesses do so at startup.

mod ambit;
mod magic;
mod rows;

pub use ambit::AmbitBackend;
pub use magic::MagicBackend;

use plim_compiler::Backend;

/// The registered `ambit` backend instance.
pub static AMBIT: AmbitBackend = AmbitBackend;

/// The registered `magic` backend instance.
pub static MAGIC: MagicBackend = MagicBackend;

/// Registers every backend of this crate with the global target registry.
///
/// Idempotent: safe to call from binaries, tests, and library users in any
/// order. After the call, `Target::parse("ambit")` and
/// `Target::parse("magic")` resolve.
pub fn install() {
    plim_compiler::backend::register(&AMBIT);
    plim_compiler::backend::register(&MAGIC);
}

/// Fills the per-target columns (`ambit_ops`/`ambit_cost`,
/// `magic_ops`/`magic_cost`) of every record of a bench run, re-costing
/// the default compiler's post-optimization IR (job 2 of each circuit's
/// job group) under each alternative backend — no recompilation.
pub fn annotate_bench(run: &mut plim_compiler::batch::BenchRun) {
    install();
    if run.records.is_empty() {
        return;
    }
    let stride = run.report.jobs.len() / run.records.len();
    let report = &run.report;
    for (index, record) in run.records.iter_mut().enumerate() {
        let ir = &report.jobs[index * stride + 2].ir;
        let ambit = AMBIT.cost(ir);
        record.ambit_ops = ambit.instructions as u64;
        record.ambit_cost = ambit.units;
        let magic = MAGIC.cost(ir);
        record.magic_ops = magic.instructions as u64;
        record.magic_cost = magic.units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim_compiler::Target;

    #[test]
    fn install_makes_the_targets_resolvable() {
        install();
        install(); // idempotent
        assert_eq!(Target::parse("ambit").unwrap().name(), "ambit");
        assert_eq!(Target::parse("magic").unwrap().name(), "magic");
        let names: Vec<&str> = Target::all().iter().map(|t| t.name()).collect();
        assert_eq!(names[0], "rm3", "RM3 stays first in the registry");
        assert!(names.contains(&"ambit") && names.contains(&"magic"));
    }
}
