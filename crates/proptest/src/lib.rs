//! # proptest (offline stub)
//!
//! This workspace builds with **no network access**, so the real
//! [proptest](https://crates.io/crates/proptest) crate cannot be fetched.
//! This crate is a deliberately small, dependency-free stand-in that
//! implements exactly the subset the workspace's property tests use, with
//! the same surface syntax:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`];
//! * [`any`] for primitive types, ranges as strategies, tuples of
//!   strategies, and [`collection::vec`];
//! * [`ProptestConfig::with_cases`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros.
//!
//! Differences from the real crate: generation is driven by a fixed
//! per-test seed (runs are fully deterministic), and there is **no
//! shrinking** — a failing case panics with the assertion message directly.
//! If the repository ever gains registry access, deleting this crate and
//! adding `proptest = "1"` to the dev-dependencies restores the real
//! engine without touching any test.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator state (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x5EED_CAFE_F00D_D1CE)
    }

    /// Creates the generator for a named property test (FNV-1a over the
    /// name), so every test has its own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(hash)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type.
///
/// Only the generation half of proptest's `Strategy` exists here; there are
/// no value trees and no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// An unconstrained strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let offset = u128::from(rng.next_u64()) % span;
                ((self.start as u128) + offset) as $t
            }
        }
    )*};
}
range_strategy_unsigned!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (u128::from(rng.next_u64()) % (span as u128)) as i128;
                ((self.start as i128) + offset) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 1..200)`: a vector of 1–199 generated elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Map, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests.
///
/// Supports the real crate's surface syntax for the forms used in this
/// workspace: an optional `#![proptest_config(..)]` header and `#[test]`
/// functions whose parameters are either `name in strategy` or
/// `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    // Internal: no more items.
    (@items ($cfg:expr); ) => {};
    // Internal: one test function (any attributes, `#[test]` among them),
    // then the rest.
    (@items ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::proptest!(@bind __rng, ($($params)*), $body);
            }
        }
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    // Internal: bind parameters, then run the body.
    (@bind $rng:ident, (), $body:block) => {{ $body }};
    (@bind $rng:ident, ($name:ident in $strategy:expr), $body:block) => {{
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $body
    }};
    (@bind $rng:ident, ($name:ident in $strategy:expr, $($rest:tt)*), $body:block) => {{
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::proptest!(@bind $rng, ($($rest)*), $body)
    }};
    (@bind $rng:ident, ($name:ident: $ty:ty), $body:block) => {{
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $body
    }};
    (@bind $rng:ident, ($name:ident: $ty:ty, $($rest:tt)*), $body:block) => {{
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::proptest!(@bind $rng, ($($rest)*), $body)
    }};
    // Entry with a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    // Entry without a config header.
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0u8..3).generate(&mut rng);
            assert!(w < 3);
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strategy = (2usize..10, any::<u64>()).prop_map(|(a, b)| (a, b));
        let mut r1 = TestRng::for_test("t");
        let mut r2 = TestRng::for_test("t");
        for _ in 0..100 {
            assert_eq!(strategy.generate(&mut r1), strategy.generate(&mut r2));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = collection::vec(any::<bool>(), 1..9).generate(&mut rng);
            assert!((1..9).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_both_parameter_forms(
            seed: u64,
            small in 1usize..5,
            pair in (0u8..4, any::<bool>()),
        ) {
            let _ = seed;
            prop_assert!((1..5).contains(&small));
            prop_assert!(pair.0 < 4);
            prop_assert_ne!(small, 0);
            prop_assert_eq!(small, small);
        }
    }

    proptest! {
        #[test]
        fn macro_works_without_config(flag: bool) {
            prop_assert!(u8::from(flag) <= 1);
        }
    }
}
