//! # plim-analysis — static analyzer and lint framework for PLiM artifacts
//!
//! A standalone verification layer over the compiler's two artifact forms:
//!
//! * the **IR event stream** ([`plim_compiler::ir::IrProgram`]) — analyzed
//!   by the core lint engine ([`analyze_events`], re-exported here), one
//!   linear dataflow pass tracking per-cell abstract state;
//! * the **emitted program** ([`plim_compiler::Rm3Program`]) —
//!   analyzed by [`analyze_program`], which replays the physical
//!   instruction sequence against an initialization map;
//!
//! plus **resource certification** ([`certify`] / [`cross_check`]): the
//! event stream is replayed through a fresh allocator — independently of
//! the emitter — re-deriving `#I`, `#R`, and the per-cell wear profile,
//! which must agree *exactly* with the recorded
//! [`Rm3Stats`](plim_compiler::Rm3Stats) and the program's static
//! write counts. Any disagreement is a `PA0008` diagnostic: the stats the
//! benchmarks trust no longer describe the artifact.
//!
//! [`analyze_artifact`] bundles all three over a
//! [`plim_compiler::Compilation`]; `plimc lint` wraps that in
//! a CLI with per-lint `--deny`/`--allow` ([`LintConfig`]) and text/JSON
//! reports ([`Report`]).
//!
//! The [`doctor`] module deliberately corrupts event streams (e.g.
//! injecting a write-after-release) so CI can prove the analyzer actually
//! rejects bad artifacts rather than vacuously passing good ones.

use plim::{Operand, OutputLoc, RamAddr};
use plim_compiler::alloc::RramAllocator;
use plim_compiler::ir::{Event, IrProgram, Value};
use plim_compiler::json::Value as Json;
use plim_compiler::{Compilation, OptLevel, Rm3Program};

pub use plim_compiler::ir::analysis::{
    analyze_events, introduces, lint_counts, AnalysisConfig, Diagnostic, Lint, Severity, LINT_COUNT,
};

pub mod doctor;

/// Resources re-derived from the event stream alone, by replaying it
/// through a fresh allocator of the program's strategy — no numbers are
/// taken from the emitter or from [`Rm3Stats`](plim_compiler::Rm3Stats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Instruction count (`#I`): one per [`Event::Op`].
    pub instructions: usize,
    /// Work-cell count (`#R`): the highest physical address any replayed
    /// instruction touches, plus one.
    pub rams: u32,
    /// The largest per-cell destination-write count.
    pub max_cell_writes: u64,
    /// Destination writes per physical cell, indexed by address.
    pub write_counts: Vec<u64>,
}

/// Replays `ir.events` through a fresh [`RramAllocator`] and returns the
/// re-derived resource profile.
///
/// Returns `None` if the stream is malformed (a release before a request,
/// an op touching a cell outside its lifetime, an unknown cell or op) —
/// exactly the streams on which [`analyze_events`] reports structural
/// errors, so a `None` here never goes unexplained.
pub fn certify(ir: &IrProgram) -> Option<Certificate> {
    let mut alloc = RramAllocator::new(ir.allocator);
    let mut addr: Vec<Option<RamAddr>> = vec![None; ir.cells.len()];
    let mut instructions = 0usize;
    let mut rams = 0u32;
    for &event in &ir.events {
        match event {
            Event::Request(c) => {
                let hint = ir.cells.get(c.index())?.hint;
                *addr.get_mut(c.index())? = Some(alloc.request_with_hint(hint));
            }
            Event::Release(c) => {
                let a = addr.get_mut(c.index())?.take()?;
                alloc.release(a);
            }
            Event::Op(i) => {
                let op = ir.ops.get(i as usize)?;
                let z = (*addr.get(op.z.index())?)?;
                instructions += 1;
                alloc.note_write(z);
                rams = rams.max(z.0 + 1);
                for value in [op.a, op.b] {
                    if let Value::Cell(c) = value {
                        let a = (*addr.get(c.index())?)?;
                        rams = rams.max(a.0 + 1);
                    }
                }
            }
        }
    }
    Some(Certificate {
        instructions,
        rams,
        max_cell_writes: alloc.max_writes(),
        write_counts: alloc.write_counts().to_vec(),
    })
}

/// Compares a [`Certificate`] against the emitted artifact, reporting
/// every disagreement as a `PA0008` diagnostic: `#I`, `#R`, and
/// `max_cell_writes` versus [`Rm3Stats`](plim_compiler::Rm3Stats),
/// and the full per-cell wear profile versus
/// [`Rm3Program::static_write_counts`].
pub fn cross_check(certificate: &Certificate, compiled: &Rm3Program) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut mismatch = |message: String| {
        diags.push(Diagnostic {
            lint: Lint::StatsMismatch,
            event: None,
            cell: None,
            node: None,
            message,
        });
    };
    let stats = &compiled.stats;
    if certificate.instructions != stats.instructions {
        mismatch(format!(
            "re-derived #I = {} but Rm3Stats records {}",
            certificate.instructions, stats.instructions
        ));
    }
    if certificate.rams != stats.rams {
        mismatch(format!(
            "re-derived #R = {} but Rm3Stats records {}",
            certificate.rams, stats.rams
        ));
    }
    if certificate.max_cell_writes != stats.max_cell_writes {
        mismatch(format!(
            "re-derived max cell writes = {} but Rm3Stats records {}",
            certificate.max_cell_writes, stats.max_cell_writes
        ));
    }
    let emitted = compiled.static_write_counts();
    let cells = certificate.write_counts.len().max(emitted.len());
    for index in 0..cells {
        let replayed = certificate.write_counts.get(index).copied().unwrap_or(0);
        let actual = emitted.get(index).copied().unwrap_or(0);
        if replayed != actual {
            mismatch(format!(
                "cell X{}: re-derived wear {replayed} but the program performs {actual} writes",
                index + 1
            ));
        }
    }
    diags
}

/// Analyzes the emitted physical program: a linear pass over the
/// instruction sequence tracking which cells have been written, reporting
/// every read of an uninitialized cell as `PA0001` — operand reads,
/// non-masking destination reads (the old value of `Z` participates in the
/// majority unless both `A` and `B` are differing constants), and outputs
/// resident in never-written cells.
///
/// This is the reporting generalization of
/// [`verify::check_init_discipline`](plim_compiler::verify::check_init_discipline):
/// it collects *all* findings instead of stopping at the first. In the
/// resulting diagnostics, `event` holds the 0-based instruction index
/// (`pc`), not an event-stream position.
pub fn analyze_program(compiled: &Rm3Program) -> Vec<Diagnostic> {
    let program = &compiled.program;
    let mut diags = Vec::new();
    let mut written = vec![false; program.num_rams() as usize];
    let mut uninit = |pc: Option<usize>, message: String| {
        diags.push(Diagnostic {
            lint: Lint::UseBeforeInit,
            event: pc,
            cell: None,
            node: None,
            message,
        });
    };
    for (pc, instruction) in program.instructions().iter().enumerate() {
        let masking = matches!(
            (instruction.a, instruction.b),
            (Operand::Const(x), Operand::Const(y)) if x != y
        );
        for operand in [instruction.a, instruction.b] {
            if let Operand::Ram(a) = operand {
                if !written[a.index()] {
                    uninit(
                        Some(pc),
                        format!("pc {}: instruction reads {a} before any write", pc + 1),
                    );
                }
            }
        }
        if !masking && !written[instruction.z.index()] {
            uninit(
                Some(pc),
                format!(
                    "pc {}: non-masking write observes uninitialized destination {}",
                    pc + 1,
                    instruction.z
                ),
            );
        }
        written[instruction.z.index()] = true;
    }
    for (name, loc) in program.outputs() {
        if let OutputLoc::Ram(a) = loc {
            if !written.get(a.index()).copied().unwrap_or(false) {
                uninit(
                    None,
                    format!("output `{name}` reads never-written cell {a}"),
                );
            }
        }
    }
    diags
}

/// Runs the full analysis battery over one compilation artifact: the
/// event-stream lints at the check level appropriate for `opt`
/// ([`AnalysisConfig::for_level`]), the physical-program analysis
/// ([`analyze_program`]), and resource certification ([`certify`] +
/// [`cross_check`]).
///
/// An empty result is the artifact's clean bill of health — the claim the
/// `lint_clean` benchmark column and the `plimc lint` exit status stand
/// on.
pub fn analyze_artifact(compilation: &Compilation, opt: OptLevel) -> Vec<Diagnostic> {
    let config = AnalysisConfig::for_level(opt);
    let mut diags = analyze_events(&compilation.ir, &config);
    diags.extend(analyze_program(&compilation.compiled));
    match certify(&compilation.ir) {
        Some(certificate) => diags.extend(cross_check(&certificate, &compilation.compiled)),
        // A malformed stream always carries structural errors from
        // `analyze_events`; the backstop below only guards against the two
        // analyses ever disagreeing about malformedness.
        None if diags.is_empty() => diags.push(Diagnostic {
            lint: Lint::StatsMismatch,
            event: None,
            cell: None,
            node: None,
            message: "event stream could not be replayed for certification".into(),
        }),
        None => {}
    }
    diags
}

/// Per-lint severity policy: `--deny` promotes a lint to [`Severity::Error`],
/// `--allow` suppresses it entirely. Later settings win over earlier ones
/// for the same lint.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    denied: Vec<Lint>,
    allowed: Vec<Lint>,
}

impl LintConfig {
    /// The default policy: every lint at its built-in severity.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// Treats `lint` as an error regardless of its default severity.
    pub fn deny(&mut self, lint: Lint) {
        self.allowed.retain(|&l| l != lint);
        if !self.denied.contains(&lint) {
            self.denied.push(lint);
        }
    }

    /// Suppresses `lint` entirely.
    pub fn allow(&mut self, lint: Lint) {
        self.denied.retain(|&l| l != lint);
        if !self.allowed.contains(&lint) {
            self.allowed.push(lint);
        }
    }

    /// The severity `lint` is reported at, or `None` if suppressed.
    pub fn effective(&self, lint: Lint) -> Option<Severity> {
        if self.allowed.contains(&lint) {
            return None;
        }
        if self.denied.contains(&lint) {
            return Some(Severity::Error);
        }
        Some(lint.severity())
    }
}

/// A rendered lint run over one artifact: the diagnostics that survived
/// the [`LintConfig`], each with its effective severity.
#[derive(Debug, Clone)]
pub struct Report {
    /// What was analyzed (a circuit name or file path).
    pub subject: String,
    /// Surviving findings with their effective severities, in input order.
    pub findings: Vec<(Severity, Diagnostic)>,
    /// Number of findings the config suppressed.
    pub suppressed: usize,
}

impl Report {
    /// Applies `config` to raw diagnostics.
    pub fn new(
        subject: impl Into<String>,
        diags: impl IntoIterator<Item = Diagnostic>,
        config: &LintConfig,
    ) -> Report {
        let mut findings = Vec::new();
        let mut suppressed = 0usize;
        for diag in diags {
            match config.effective(diag.lint) {
                Some(severity) => findings.push((severity, diag)),
                None => suppressed += 1,
            }
        }
        Report {
            subject: subject.into(),
            findings,
            suppressed,
        }
    }

    /// Number of error-level findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|(s, _)| *s == Severity::Error)
            .count()
    }

    /// Number of warning-level findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// `true` if no findings survived — warnings included.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `true` if the run should fail (any error-level finding).
    pub fn failing(&self) -> bool {
        self.errors() > 0
    }

    /// Renders the report as a JSON object — the `plimc lint --json`
    /// element format. Each diagnostic carries its *effective* severity.
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<u64>| match v {
            Some(n) => Json::number(n),
            None => Json::Null,
        };
        let diagnostics = self
            .findings
            .iter()
            .map(|(severity, diag)| {
                Json::object([
                    ("lint", Json::string(diag.lint.code())),
                    ("name", Json::string(diag.lint.name())),
                    ("severity", Json::string(severity.name())),
                    ("event", opt_num(diag.event.map(|e| e as u64))),
                    ("cell", opt_num(diag.cell.map(|c| u64::from(c.0)))),
                    ("node", opt_num(diag.node.map(|n| n.index() as u64))),
                    ("message", Json::string(diag.message.clone())),
                ])
            })
            .collect();
        Json::object([
            ("subject", Json::string(self.subject.clone())),
            ("clean", Json::Bool(self.clean())),
            ("failing", Json::Bool(self.failing())),
            ("errors", Json::number(self.errors() as u64)),
            ("warnings", Json::number(self.warnings() as u64)),
            ("suppressed", Json::number(self.suppressed as u64)),
            ("diagnostics", Json::Array(diagnostics)),
        ])
    }
}

impl std::fmt::Display for Report {
    /// The `plimc lint` text format: a one-line verdict, then one indented
    /// line per finding.
    ///
    /// ```text
    /// adder4: 1 error, 2 warnings
    ///   error[PA0002]: event 17: op writes %3 after its release
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let suppressed = match self.suppressed {
            0 => String::new(),
            n => format!(" ({n} suppressed)"),
        };
        if self.clean() {
            return write!(f, "{}: clean{suppressed}", self.subject);
        }
        let plural = |n: usize| if n == 1 { "" } else { "s" };
        let (errors, warnings) = (self.errors(), self.warnings());
        write!(f, "{}: ", self.subject)?;
        match (errors, warnings) {
            (0, w) => write!(f, "{w} warning{}", plural(w))?,
            (e, 0) => write!(f, "{e} error{}", plural(e))?,
            (e, w) => write!(f, "{e} error{}, {w} warning{}", plural(e), plural(w))?,
        }
        write!(f, "{suppressed}")?;
        for (severity, diag) in &self.findings {
            write!(
                f,
                "\n  {}[{}]: {}",
                severity.name(),
                diag.lint.code(),
                diag.message
            )?;
            if let Some(node) = diag.node {
                write!(f, " (node N{})", node.index())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_config_precedence_is_last_wins() {
        let mut config = LintConfig::new();
        config.deny(Lint::StaleComplement);
        assert_eq!(
            config.effective(Lint::StaleComplement),
            Some(Severity::Error)
        );
        config.allow(Lint::StaleComplement);
        assert_eq!(config.effective(Lint::StaleComplement), None);
        config.deny(Lint::StaleComplement);
        assert_eq!(
            config.effective(Lint::StaleComplement),
            Some(Severity::Error)
        );
        // Untouched lints keep their defaults.
        assert_eq!(config.effective(Lint::DeadWrite), Some(Severity::Warning));
        assert_eq!(
            config.effective(Lint::UseAfterRelease),
            Some(Severity::Error)
        );
    }

    #[test]
    fn report_counts_and_rendering() {
        let diag = |lint: Lint, message: &str| Diagnostic {
            lint,
            event: Some(3),
            cell: None,
            node: None,
            message: message.into(),
        };
        let mut config = LintConfig::new();
        config.allow(Lint::DeadWrite);
        let report = Report::new(
            "adder",
            [
                diag(Lint::UseAfterRelease, "boom"),
                diag(Lint::StaleComplement, "meh"),
                diag(Lint::DeadWrite, "gone"),
            ],
            &config,
        );
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 1);
        assert_eq!(report.suppressed, 1);
        assert!(report.failing());
        assert!(!report.clean());
        let text = report.to_string();
        assert!(text.starts_with("adder: 1 error, 1 warning (1 suppressed)"));
        assert!(text.contains("error[PA0002]: boom"));
        assert!(text.contains("warning[PA0005]: meh"));
        assert!(!text.contains("PA0006"));
        let json = report.to_json().to_json();
        assert!(json.contains("\"failing\":true"));
        assert!(json.contains("\"suppressed\":1"));
    }

    #[test]
    fn clean_report_renders_and_passes() {
        let report = Report::new("xor", [], &LintConfig::new());
        assert!(report.clean());
        assert!(!report.failing());
        assert_eq!(report.to_string(), "xor: clean");
        assert!(report.to_json().to_json().contains("\"clean\":true"));
    }
}
