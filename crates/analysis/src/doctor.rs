//! Deliberate artifact corruption, for proving the analyzer has teeth.
//!
//! A lint gate that never fires is indistinguishable from one that is
//! wired up wrong. CI therefore dry-runs the analyzer on a *doctored*
//! event stream — a known-good compilation with one discipline violation
//! injected — and requires the run to fail with the expected lint. These
//! helpers perform the injections; each documents the lint it guarantees.

use plim_compiler::ir::{CellId, Event, IrProgram};

/// Injects a write-after-release: releases the destination cell of the
/// first op event immediately before that op runs, so the op's write (and
/// any later use of the cell) lands on a released cell.
///
/// On any stream produced by the compiler this guarantees a `PA0002`
/// (use-after-release) finding — the lowering always requests a cell
/// before its first write, so at the injection point the destination is
/// requested-but-unwritten and the release itself is unremarkable.
///
/// Returns the sabotaged cell, or `None` if the stream has no op events
/// (nothing to corrupt).
pub fn inject_write_after_release(ir: &mut IrProgram) -> Option<CellId> {
    let pos = ir
        .events
        .iter()
        .position(|event| matches!(event, Event::Op(_)))?;
    let Event::Op(i) = ir.events[pos] else {
        unreachable!("position() matched an op event");
    };
    let z = ir.ops.get(i as usize)?.z;
    ir.events.insert(pos, Event::Release(z));
    Some(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim_compiler::ir::analysis::{analyze_events, AnalysisConfig, Lint};
    use plim_compiler::{compile_full, CompilerOptions};

    #[test]
    fn injection_trips_use_after_release() {
        let mut mig = mig::Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, b, c);
        mig.add_output("m", m);
        let mut compilation = compile_full(&mig, CompilerOptions::new());

        let config = AnalysisConfig::structural();
        assert!(analyze_events(&compilation.ir, &config).is_empty());

        let cell = inject_write_after_release(&mut compilation.ir).expect("stream has ops");
        let diags = analyze_events(&compilation.ir, &config);
        assert!(
            diags
                .iter()
                .any(|d| d.lint == Lint::UseAfterRelease && d.cell == Some(cell)),
            "expected PA0002 on %{}, got: {diags:?}",
            cell.0
        );
    }

    #[test]
    fn empty_stream_is_not_corruptible() {
        let mut mig = mig::Mig::new();
        let a = mig.add_input("a");
        mig.add_output("a", a);
        let mut compilation = compile_full(&mig, CompilerOptions::new());
        // A pass-through circuit lowers to zero ops.
        assert_eq!(inject_write_after_release(&mut compilation.ir), None);
    }
}
