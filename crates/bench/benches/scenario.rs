//! Throughput benchmark for the bit-parallel executor and the scenario
//! engines.
//!
//! The scenario engines (exhaustive verification, fault injection,
//! lifetime simulation) are only affordable because the wide machine runs
//! 64 (`u64`) or 256 (`W256`) input patterns per instruction step. This
//! harness measures that claim directly — patterns per second through the
//! scalar [`plim::Machine`] and both wide widths on the same compiled
//! programs — and **asserts** the 64-wide machine is at least 30× faster
//! than the scalar one on the suite aggregate, so a regression in the wide
//! stepping loop fails CI rather than silently melting the verification
//! budget. It then reports the resulting end-to-end engine throughput
//! (exhaustive proofs, fault sweeps, lifetime blocks).
//!
//! Run with `cargo bench -p plim-bench --bench scenario [-- --smoke|--full]`.

use std::time::{Duration, Instant};

use mig::simulate::XorShift64;
use plim::wide::{LaneWord, WideMachine, W256};
use plim::{Machine, Program};
use plim_bench::{circuits_named, Parallelism};
use plim_benchmarks::suite::Scale;
use plim_compiler::verify::{verify_exhaustive, EXHAUSTIVE_WIDE_LIMIT};
use plim_compiler::{compile, CompilerOptions};
use plim_scenario::{fault_sweep, simulate_lifetime, FaultModel, FaultScenario, LifetimeScenario};

/// The speedup floor the 64-wide machine must clear on the aggregate.
const WIDE_SPEEDUP_FLOOR: f64 = 30.0;

const CIRCUITS: [&str; 4] = ["adder", "bar", "voter", "i2c"];
const SMOKE_CIRCUITS: [&str; 2] = ["ctrl", "voter"];

/// Runs `patterns` random input patterns through the scalar machine, one
/// at a time, reusing the machine across runs.
fn scalar_patterns(program: &Program, patterns: u64, seed: u64) -> Duration {
    let mut machine = Machine::new();
    let mut rng = XorShift64::new(seed);
    let mut inputs = vec![false; program.num_inputs()];
    let clock = Instant::now();
    for _ in 0..patterns {
        for input in inputs.iter_mut() {
            *input = rng.next_word() & 1 == 1;
        }
        std::hint::black_box(machine.run(program, &inputs).unwrap());
    }
    clock.elapsed()
}

/// Runs `patterns` random input patterns through the wide machine,
/// [`LaneWord::LANES`] per execution, reusing the machine across runs.
fn wide_patterns<W: LaneWord>(program: &Program, patterns: u64, seed: u64) -> Duration {
    let mut machine = WideMachine::<W>::new();
    let mut rng = XorShift64::new(seed);
    let mut inputs = vec![W::zero(); program.num_inputs()];
    let runs = patterns.div_ceil(W::LANES as u64);
    let clock = Instant::now();
    for _ in 0..runs {
        for input in inputs.iter_mut() {
            *input = W::from_blocks(|_| rng.next_word());
        }
        std::hint::black_box(machine.run(program, &inputs).unwrap());
    }
    clock.elapsed()
}

fn per_second(patterns: u64, elapsed: Duration) -> f64 {
    patterns as f64 / elapsed.as_secs_f64().max(f64::EPSILON)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full") && !smoke;
    let scale = if full { Scale::Full } else { Scale::Reduced };
    let names: &[&str] = if smoke { &SMOKE_CIRCUITS } else { &CIRCUITS };
    let patterns: u64 = if smoke { 4096 } else { 65536 };

    let circuits = circuits_named(names, scale);
    println!(
        "── wide-executor throughput ({} patterns/circuit, scale: {}) ──",
        patterns,
        if full { "full" } else { "reduced" },
    );
    println!(
        "{:<11} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "circuit", "scalar pat/s", "u64 pat/s", "W256 pat/s", "64-wide", "256-wide"
    );

    let mut scalar_total = Duration::ZERO;
    let mut wide64_total = Duration::ZERO;
    for circuit in &circuits {
        let compiled = compile(&circuit.mig, CompilerOptions::new());
        let t_scalar = scalar_patterns(&compiled.program, patterns, 0xDAC2016);
        let t_wide64 = wide_patterns::<u64>(&compiled.program, patterns, 0xDAC2016);
        let t_wide256 = wide_patterns::<W256>(&compiled.program, patterns, 0xDAC2016);
        scalar_total += t_scalar;
        wide64_total += t_wide64;
        println!(
            "{:<11} {:>14.0} {:>14.0} {:>14.0} {:>8.1}x {:>8.1}x",
            circuit.name,
            per_second(patterns, t_scalar),
            per_second(patterns, t_wide64),
            per_second(patterns, t_wide256),
            t_scalar.as_secs_f64() / t_wide64.as_secs_f64().max(f64::EPSILON),
            t_scalar.as_secs_f64() / t_wide256.as_secs_f64().max(f64::EPSILON),
        );
    }
    let speedup = scalar_total.as_secs_f64() / wide64_total.as_secs_f64().max(f64::EPSILON);
    println!("Σ 64-wide speedup: {speedup:.1}x (floor: {WIDE_SPEEDUP_FLOOR}x)");
    assert!(
        speedup >= WIDE_SPEEDUP_FLOOR,
        "64-wide executor is only {speedup:.1}x the scalar machine (floor {WIDE_SPEEDUP_FLOOR}x)"
    );
    println!();

    println!("── scenario-engine throughput ──");
    for circuit in &circuits {
        let compiled = compile(&circuit.mig, CompilerOptions::new());
        let inputs = circuit.mig.num_inputs();

        let exhaustive = if inputs <= EXHAUSTIVE_WIDE_LIMIT {
            let clock = Instant::now();
            verify_exhaustive(&circuit.mig, &compiled).unwrap();
            let elapsed = clock.elapsed();
            format!(
                "proof 2^{inputs} in {elapsed:.1?} ({:.0} pat/s)",
                per_second(1 << inputs, elapsed)
            )
        } else {
            format!("proof skipped ({inputs} inputs > {EXHAUSTIVE_WIDE_LIMIT})")
        };

        let scenario = FaultScenario {
            model: FaultModel::drift(1e-3),
            patterns,
            seed: 0xDAC2016,
            parallelism: Parallelism::Auto,
        };
        let clock = Instant::now();
        let report = fault_sweep(&compiled.program, &scenario).unwrap();
        let fault_elapsed = clock.elapsed();

        let lifetime = LifetimeScenario {
            cell_endurance: 100_000,
            write_noise: if smoke { 0.0 } else { 0.01 },
            ..LifetimeScenario::default()
        };
        let clock = Instant::now();
        let life = simulate_lifetime(&compiled.program, &lifetime);
        let life_elapsed = clock.elapsed();

        println!(
            "{:<11} {exhaustive}; fault sweep {:.1?} (rate {:.4}); lifetime {} inv in {:.1?}",
            circuit.name,
            fault_elapsed,
            report.error_rate(),
            life.invocations,
            life_elapsed,
        );
    }
}
