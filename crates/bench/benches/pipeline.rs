//! Timed benchmarks for the pipeline stages and the batch driver.
//!
//! These measure compiler *throughput* (the paper reports only program
//! quality, not compile time; a practical compiler needs both). The harness
//! is criterion-free so the workspace builds offline (`harness = false`);
//! each measurement reports the best of `--iters` runs.
//!
//! The headline measurement is **serial vs batch** full-suite compilation:
//! the exact Table 1 workload (three compilations per circuit, one shared
//! rewrite) run job-by-job on one thread and fanned across cores by
//! `plim_compiler::batch`. On a ≥ 4-core machine the batch pipeline is
//! expected to finish the suite ≥ 2× faster; the achieved speedup and the
//! worker count are printed either way.
//!
//! Run with `cargo bench -p plim-bench [-- --full] [-- --iters N]`.

use std::time::{Duration, Instant};

use mig::rewrite::rewrite;
use plim_bench::{measure, measure_suite, suite_circuits, Parallelism};
use plim_benchmarks::suite::{build, Scale};
use plim_compiler::{compile, CompilerOptions};

const CIRCUITS: [&str; 4] = ["adder", "bar", "voter", "i2c"];

/// Best-of-`iters` wall-clock time of `f`.
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters.max(1) {
        let clock = Instant::now();
        std::hint::black_box(f());
        best = best.min(clock.elapsed());
    }
    best
}

fn bench_stages(iters: usize) {
    println!("── stage benchmarks (reduced scale, best of {iters}) ──");
    println!(
        "{:<11} {:>12} {:>14} {:>14} {:>12}",
        "circuit", "rewrite", "compile naive", "compile smart", "machine run"
    );
    for name in CIRCUITS {
        let mig = build(name, Scale::Reduced).unwrap();
        let rewritten = rewrite(&mig, 4);
        let compiled = compile(&rewritten, CompilerOptions::new());
        let inputs = vec![false; rewritten.num_inputs()];
        let t_rewrite = best_of(iters, || rewrite(&mig, 4));
        let t_naive = best_of(iters, || compile(&rewritten, CompilerOptions::naive()));
        let t_smart = best_of(iters, || compile(&rewritten, CompilerOptions::new()));
        let mut machine = plim::Machine::new();
        let t_machine = best_of(iters, || machine.run(&compiled.program, &inputs).unwrap());
        println!(
            "{:<11} {:>12.1?} {:>14.1?} {:>14.1?} {:>12.1?}",
            name, t_rewrite, t_naive, t_smart, t_machine
        );
    }
    println!();
}

fn bench_suite(scale: Scale, effort: usize, iters: usize) {
    let circuits = suite_circuits(scale);
    println!(
        "── full-suite compilation: serial vs batch ({} circuits, effort {effort}, best of {iters}) ──",
        circuits.len()
    );

    let serial = best_of(iters, || {
        circuits
            .iter()
            .map(|c| measure(&c.name, &c.mig, effort))
            .collect::<Vec<_>>()
    });
    let mut workers = 0;
    let batch = best_of(iters, || {
        let run = measure_suite(&circuits, effort, Parallelism::Auto);
        workers = run.report.workers;
        run
    });

    let speedup = serial.as_secs_f64() / batch.as_secs_f64().max(f64::EPSILON);
    println!("serial (1 thread):    {serial:>10.2?}");
    println!("batch  ({workers} workers):   {batch:>10.2?}");
    println!("speedup:              {speedup:>10.2}x");
    if plim_parallel::available_threads() >= 4 && speedup < 2.0 {
        println!("WARNING: expected ≥ 2x on ≥ 4 cores");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let scale = if full { Scale::Full } else { Scale::Reduced };

    bench_stages(iters);
    bench_suite(scale, 4, iters);
}
