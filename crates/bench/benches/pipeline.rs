//! Timed benchmarks for the pipeline stages and the batch driver.
//!
//! These measure compiler *throughput* (the paper reports only program
//! quality, not compile time; a practical compiler needs both). The harness
//! is criterion-free so the workspace builds offline (`harness = false`);
//! each measurement reports the best of `--iters` runs.
//!
//! Two headline measurements:
//!
//! * **in-place vs rebuild rewriting** — the exact Algorithm 1 schedule run
//!   by the reusable-arena engine (`mig::arena::RewriteArena`, the default
//!   behind `rewrite`) and by the rebuild reference engine
//!   (`rewrite_rebuild`), per circuit, with the in-place engine's per-pass
//!   wall-clock breakdown and peak node-arena size. The in-place engine
//!   performs one import and one compaction per call instead of ~5 graph
//!   reconstructions per cycle, and is expected to win on every circuit.
//! * **arena vs equality saturation** — the `--rewrite egraph` stage
//!   (arena baseline + saturation + extraction + compiled-cost scoring)
//!   against the plain arena stage, with compiled `#I` at -O2 for both
//!   and per-circuit saturation statistics (e-nodes, iterations, and the
//!   budget axis that stopped the run). The Σ row enforces the 10×
//!   wall-clock acceptance bound.
//! * **serial vs batch** full-suite compilation: the exact Table 1 workload
//!   (three compilations per circuit, one shared rewrite) run job-by-job on
//!   one thread and fanned across cores by `plim_compiler::batch`. On a
//!   ≥ 4-core machine the batch pipeline is expected to finish the suite
//!   ≥ 2× faster; the achieved speedup and the worker count are printed
//!   either way.
//!
//! Run with
//! `cargo bench -p plim-bench --bench pipeline [-- --full] [-- --iters N]`.
//! `cargo bench -p plim-bench --bench pipeline -- --smoke` runs everything
//! in a reduced one-iteration configuration (the CI smoke step), so the
//! harness itself cannot rot. `-- --json PATH` additionally writes the
//! `BENCH.json` bench-gate artifact (`plim_compiler::benchfile`) for the
//! suite that was benchmarked.

use std::time::{Duration, Instant};

use mig::arena::RewriteArena;
use mig::rewrite::{rewrite, rewrite_rebuild};
use plim_bench::{measure, measure_suite, suite_circuits, Parallelism};
use plim_benchmarks::suite::{build, Scale};
use plim_compiler::{batch, benchfile, compile, CompilerOptions};

const CIRCUITS: [&str; 4] = ["adder", "bar", "voter", "i2c"];
const SMOKE_CIRCUITS: [&str; 2] = ["ctrl", "voter"];

/// Best-of-`iters` wall-clock time of `f`.
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters.max(1) {
        let clock = Instant::now();
        std::hint::black_box(f());
        best = best.min(clock.elapsed());
    }
    best
}

fn bench_stages(circuits: &[&str], iters: usize) {
    println!("── stage benchmarks (reduced scale, best of {iters}) ──");
    println!(
        "{:<11} {:>12} {:>14} {:>14} {:>12}",
        "circuit", "rewrite", "compile naive", "compile smart", "machine run"
    );
    for &name in circuits {
        let mig = build(name, Scale::Reduced).unwrap();
        let rewritten = rewrite(&mig, 4);
        let compiled = compile(&rewritten, CompilerOptions::new());
        let inputs = vec![false; rewritten.num_inputs()];
        let t_rewrite = best_of(iters, || rewrite(&mig, 4));
        let t_naive = best_of(iters, || compile(&rewritten, CompilerOptions::naive()));
        let t_smart = best_of(iters, || compile(&rewritten, CompilerOptions::new()));
        let mut machine = plim::Machine::new();
        let t_machine = best_of(iters, || machine.run(&compiled.program, &inputs).unwrap());
        println!(
            "{name:<11} {t_rewrite:>12.1?} {t_naive:>14.1?} {t_smart:>14.1?} {t_machine:>12.1?}"
        );
    }
    println!();
}

/// The in-place-vs-rebuild rewrite comparison: total wall-clock per engine
/// plus the arena engine's per-pass breakdown and peak arena size. The two
/// engines must agree functionally and the in-place node count must be no
/// worse — both are asserted here so the bench doubles as a smoke check.
fn bench_rewrite_engines(circuits: &[&str], scale: Scale, iters: usize) {
    println!("── rewrite engines: rebuild vs in-place (effort 4, best of {iters}) ──");
    println!(
        "{:<11} {:>11} {:>11} {:>8} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "circuit",
        "rebuild",
        "in-place",
        "speedup",
        "load",
        "Ω.D",
        "Ω.A",
        "Ω.I",
        "compact",
        "peak-arena"
    );
    let mut arena = RewriteArena::new();
    let mut total_rebuild = Duration::ZERO;
    let mut total_inplace = Duration::ZERO;
    for &name in circuits {
        let mig = build(name, scale).unwrap();
        let t_rebuild = best_of(iters, || rewrite_rebuild(&mig, 4));
        let t_inplace = best_of(iters, || arena.rewrite(&mig, 4));
        total_rebuild += t_rebuild;
        total_inplace += t_inplace;

        let inplace = arena.rewrite(&mig, 4);
        let profile = arena.profile().clone();
        let rebuild = rewrite_rebuild(&mig, 4);
        assert!(
            mig::equiv::check_equivalence(&rebuild, &inplace, 16, 0xDAC)
                .unwrap()
                .holds(),
            "{name}: engines disagree"
        );
        assert!(
            inplace.num_majority_nodes() <= rebuild.num_majority_nodes(),
            "{name}: in-place produced more nodes"
        );
        let speedup = t_rebuild.as_secs_f64() / t_inplace.as_secs_f64().max(f64::EPSILON);
        println!(
            "{:<11} {:>11.1?} {:>11.1?} {:>7.2}x | {:>9.1?} {:>9.1?} {:>9.1?} {:>9.1?} {:>9.1?} {:>10}",
            name,
            t_rebuild,
            t_inplace,
            speedup,
            profile.load,
            profile.distributivity,
            profile.associativity,
            profile.inverter,
            profile.compact,
            profile.peak_arena_nodes,
        );
    }
    let overall = total_rebuild.as_secs_f64() / total_inplace.as_secs_f64().max(f64::EPSILON);
    println!(
        "{:<11} {:>11.1?} {:>11.1?} {:>7.2}x",
        "Σ", total_rebuild, total_inplace, overall
    );
    if overall < 1.0 {
        println!("WARNING: in-place engine slower than rebuild overall");
    }
    println!();
}

/// The arena-vs-equality-saturation comparison, measured as the pipeline
/// a user actually runs: rewrite stage plus the -O2 compile of its result
/// (for `--rewrite egraph` the stage is arena baseline + saturation +
/// extraction + compiled-cost scoring). Reports compiled `#I` for both
/// engines and the per-circuit saturation statistics (final e-nodes,
/// iterations, and which budget axis stopped the run). Functional
/// equivalence and the never-worse compiled cost are asserted so the
/// bench doubles as a smoke check; at full scale the Σ row enforces the
/// 10× wall-clock acceptance bound (at reduced scale the compile stage is
/// microseconds, so the ratio is dominated by the saturation floor and is
/// reported without judgment).
fn bench_egraph(circuits: &[&str], scale: Scale, iters: usize, effort: usize) {
    use plim_compiler::OptLevel;
    println!(
        "── compile pipeline: --rewrite arena vs --rewrite egraph (effort {effort}, -O2, best of {iters}) ──"
    );
    println!(
        "{:<11} {:>11} {:>11} {:>7} | {:>8} {:>9} | {:>8} {:>5} {:>10}",
        "circuit", "arena", "egraph", "ratio", "#I arena", "#I egraph", "e-nodes", "iters", "stop"
    );
    let options = CompilerOptions::new().opt(OptLevel::O2);
    let mut total_arena = Duration::ZERO;
    let mut total_egraph = Duration::ZERO;
    for &name in circuits {
        let mig = build(name, scale).unwrap();
        let arena = rewrite(&mig, effort);
        let t_arena = best_of(iters, || compile(&rewrite(&mig, effort), options));
        let t_egraph = best_of(iters, || {
            let chosen = plim_egraph::optimize(&mig, &rewrite(&mig, effort), effort, options);
            compile(&chosen, options)
        });
        total_arena += t_arena;
        total_egraph += t_egraph;

        let (chosen, stats) = plim_egraph::optimize_with_stats(&mig, &arena, effort, options);
        assert!(
            mig::equiv::check_equivalence(&arena, &chosen, 16, 0xDAC)
                .unwrap()
                .holds(),
            "{name}: engines disagree"
        );
        let arena_i = compile(&arena, options).stats.instructions;
        let egraph_i = compile(&chosen, options).stats.instructions;
        assert!(
            egraph_i <= arena_i,
            "{name}: e-graph extraction compiled to more instructions"
        );
        let ratio = t_egraph.as_secs_f64() / t_arena.as_secs_f64().max(f64::EPSILON);
        println!(
            "{:<11} {:>11.1?} {:>11.1?} {:>6.2}x | {:>8} {:>9} | {:>8} {:>5} {:>10}",
            name,
            t_arena,
            t_egraph,
            ratio,
            arena_i,
            egraph_i,
            stats.final_enodes,
            stats.iterations,
            stats.stop.name(),
        );
    }
    let overall = total_egraph.as_secs_f64() / total_arena.as_secs_f64().max(f64::EPSILON);
    println!(
        "{:<11} {:>11.1?} {:>11.1?} {:>6.2}x",
        "Σ", total_arena, total_egraph, overall
    );
    if scale == Scale::Full && overall > 10.0 {
        println!("WARNING: equality saturation exceeded the 10x wall-clock bound");
    }
    println!();
}

fn bench_suite(scale: Scale, effort: usize, iters: usize) {
    let circuits = suite_circuits(scale);
    println!(
        "── full-suite compilation: serial vs batch ({} circuits, effort {effort}, best of {iters}) ──",
        circuits.len()
    );

    let serial = best_of(iters, || {
        circuits
            .iter()
            .map(|c| measure(&c.name, &c.mig, effort))
            .collect::<Vec<_>>()
    });
    let mut workers = 0;
    let batch = best_of(iters, || {
        let run = measure_suite(&circuits, effort, Parallelism::Auto);
        workers = run.report.workers;
        run
    });

    let speedup = serial.as_secs_f64() / batch.as_secs_f64().max(f64::EPSILON);
    println!("serial (1 thread):    {serial:>10.2?}");
    println!("batch  ({workers} workers):   {batch:>10.2?}");
    println!("speedup:              {speedup:>10.2}x");
    if plim_parallel::available_threads() >= 4 && speedup < 2.0 {
        println!("WARNING: expected ≥ 2x on ≥ 4 cores");
    }
    println!();
}

/// Writes the bench-gate artifact for the given scale (one extended batch
/// run: the Table 1 jobs plus the lookahead/wear probe columns).
fn emit_bench_json(path: &str, scale: Scale) {
    let circuits = suite_circuits(scale);
    let mut run = batch::bench_suite(&circuits, 4, Parallelism::Auto);
    // The fidelity columns are required fields of BENCH.json; measure them
    // from the run's own artifacts exactly as `plimc bench` does.
    if let Err(error) = plim_scenario::annotate_bench(
        &mut run,
        &circuits,
        &plim_scenario::FidelityConfig::default(),
    ) {
        eprintln!("pipeline: fidelity annotation: {error}");
        std::process::exit(1);
    }
    // The equality-saturation columns, exactly as `plimc bench` fills them.
    plim_egraph::annotate_bench(&mut run, &circuits, Parallelism::Auto);
    let verified = run
        .records
        .iter()
        .filter(|record| record.verified_exhaustive)
        .count();
    println!(
        "fidelity: {verified}/{} circuits verified exhaustively",
        run.records.len()
    );
    let document = benchfile::to_json(&run.records);
    if let Err(error) = std::fs::write(path, document) {
        eprintln!("pipeline: writing {path}: {error}");
        std::process::exit(1);
    }
    println!("bench records written to {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| match args.get(i + 1) {
            Some(path) => path.clone(),
            None => {
                eprintln!("pipeline: --json requires a path");
                std::process::exit(1);
            }
        });
    let iters = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 });
    let scale = if full && !smoke {
        Scale::Full
    } else {
        Scale::Reduced
    };
    let stage_circuits: &[&str] = if smoke { &SMOKE_CIRCUITS } else { &CIRCUITS };
    // Under --full the engine comparison covers the entire Table 1 suite,
    // matching the numbers recorded in the README; otherwise it sticks to
    // the stage-bench subset for speed.
    let engine_circuits: &[&str] = if smoke {
        &SMOKE_CIRCUITS
    } else if full {
        &plim_benchmarks::suite::ALL
    } else {
        &CIRCUITS
    };

    bench_stages(stage_circuits, iters);
    bench_rewrite_engines(engine_circuits, scale, iters);
    bench_egraph(engine_circuits, scale, iters, 4);
    bench_suite(scale, 4, iters);
    if let Some(path) = json {
        emit_bench_json(&path, scale);
    }
}
