//! Criterion benchmarks for the three pipeline stages: MIG rewriting,
//! compilation (naive and smart), and PLiM machine execution.
//!
//! These measure compiler *throughput* (the paper reports only program
//! quality, not compile time; a practical compiler needs both).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mig::rewrite::rewrite;
use plim_benchmarks::suite::{build, Scale};
use plim_compiler::{compile, CompilerOptions};

const CIRCUITS: [&str; 4] = ["adder", "bar", "voter", "i2c"];

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite");
    for name in CIRCUITS {
        let mig = build(name, Scale::Reduced).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &mig, |b, mig| {
            b.iter(|| rewrite(mig, 4));
        });
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for name in CIRCUITS {
        let mig = rewrite(&build(name, Scale::Reduced).unwrap(), 4);
        group.bench_with_input(BenchmarkId::new("naive", name), &mig, |b, mig| {
            b.iter(|| compile(mig, CompilerOptions::naive()));
        });
        group.bench_with_input(BenchmarkId::new("smart", name), &mig, |b, mig| {
            b.iter(|| compile(mig, CompilerOptions::new()));
        });
    }
    group.finish();
}

fn bench_machine(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    for name in CIRCUITS {
        let mig = rewrite(&build(name, Scale::Reduced).unwrap(), 4);
        let compiled = compile(&mig, CompilerOptions::new());
        let inputs = vec![false; mig.num_inputs()];
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(compiled, inputs),
            |b, (compiled, inputs)| {
                let mut machine = plim::Machine::new();
                b.iter(|| machine.run(&compiled.program, inputs).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    for name in CIRCUITS {
        let mig = build(name, Scale::Reduced).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &mig, |b, mig| {
            b.iter(|| {
                let rewritten = rewrite(mig, 4);
                compile(&rewritten, CompilerOptions::new())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rewrite,
    bench_compile,
    bench_machine,
    bench_full_pipeline
);
criterion_main!(benches);
