//! Throughput bench for the `plimd` compile service: cold vs warm
//! round-trips over the benchmark suite.
//!
//! An in-process server is started on a loopback port; every suite circuit
//! is submitted twice over one persistent connection. The cold pass pays
//! parse + rewrite + compile + verify per circuit; the warm pass is served
//! from the content-addressed cache and pays only parse + digest +
//! round-trip. The headline number is the warm-vs-cold speedup, expected
//! to be ≥ 5× on the reduced suite (it is typically far higher, since the
//! effort-4 rewrite dominates the cold path).
//!
//! Run with `cargo bench -p plim-bench --bench service [-- --full]`;
//! `-- --smoke` runs a three-circuit configuration as a CI smoke check
//! (assertions only, no expectations on timing).

use std::time::{Duration, Instant};

use plim_benchmarks::suite::{self, Scale};
use plim_service::client::{self, Connection};
use plim_service::pipeline::{CompileSpec, InputFormat};
use plim_service::protocol::{CompileRequest, Request, Response};
use plim_service::server::{Server, ServerConfig};

fn compile_request(source: &str) -> Request {
    Request::Compile(CompileRequest {
        format: InputFormat::Mig,
        source: source.to_string(),
        spec: CompileSpec::default(),
        emit: "listing".to_string(),
    })
}

struct PassResult {
    elapsed: Duration,
    outputs: Vec<String>,
    cached: usize,
}

/// Sends every request once over one connection, timing the whole pass.
fn run_pass(connection: &mut Connection, requests: &[Request]) -> PassResult {
    let clock = Instant::now();
    let mut outputs = Vec::with_capacity(requests.len());
    let mut cached = 0;
    for request in requests {
        match connection.roundtrip(request) {
            Ok(Response::Compile(response)) => {
                cached += usize::from(response.cached);
                outputs.push(response.output);
            }
            Ok(other) => panic!("unexpected response: {other:?}"),
            Err(error) => panic!("round-trip failed: {error}"),
        }
    }
    PassResult {
        elapsed: clock.elapsed(),
        outputs,
        cached,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full") && !smoke;
    let scale = if full { Scale::Full } else { Scale::Reduced };
    let names: Vec<&str> = if smoke {
        vec!["ctrl", "router", "dec"]
    } else {
        suite::ALL.to_vec()
    };

    let sources: Vec<(String, String)> = names
        .iter()
        .map(|&name| {
            let mig = suite::build(name, scale).expect("known benchmark");
            (name.to_string(), mig::io::write_mig(&mig))
        })
        .collect();
    let requests: Vec<Request> = sources
        .iter()
        .map(|(_, source)| compile_request(source))
        .collect();

    // Pin the worker count: the bench sends sequentially (parallelism is
    // irrelevant) and the cache budget splits per shard, so on a
    // many-core host `threads: 0` would shrink shard budgets below the
    // largest full-scale artifacts and break the all-hits assertion.
    let workers = plim_parallel::available_threads().min(4);
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: workers,
        cache_bytes: 256 << 20,
        log: false,
        ..ServerConfig::default()
    })
    .expect("bind the bench server");
    let addr = server.local_addr().expect("resolved address").to_string();
    let daemon = std::thread::spawn(move || server.run());

    println!(
        "── service throughput: cold vs warm round-trips ({} circuits, {} scale, {workers} workers) ──",
        sources.len(),
        if full { "full" } else { "reduced" },
    );

    let mut connection = Connection::connect(&addr).expect("connect to the bench server");
    let cold = run_pass(&mut connection, &requests);
    assert_eq!(cold.cached, 0, "cold pass must not hit the cache");
    let warm = run_pass(&mut connection, &requests);
    assert_eq!(
        warm.cached,
        requests.len(),
        "warm pass must be served entirely from the cache"
    );
    assert_eq!(
        cold.outputs, warm.outputs,
        "cached artifacts must be byte-identical to compiled ones"
    );

    // The hit counters are the ground truth that the warm pass skipped
    // rewrite+compile entirely.
    let Ok(Response::Stats(stats)) = client::send(&addr, &Request::Stats) else {
        panic!("stats request failed");
    };
    let totals = stats.totals();
    assert_eq!(totals.hits as usize, requests.len());
    assert_eq!(totals.misses as usize, requests.len());

    let per = |d: Duration| d.as_secs_f64() * 1e3 / requests.len() as f64;
    let speedup = cold.elapsed.as_secs_f64() / warm.elapsed.as_secs_f64().max(f64::EPSILON);
    let warm_rps = requests.len() as f64 / warm.elapsed.as_secs_f64().max(f64::EPSILON);
    println!(
        "cold: {:>10.2?} total  {:>8.3} ms/request",
        cold.elapsed,
        per(cold.elapsed)
    );
    println!(
        "warm: {:>10.2?} total  {:>8.3} ms/request  ({warm_rps:.0} requests/s)",
        warm.elapsed,
        per(warm.elapsed)
    );
    println!(
        "speedup: {speedup:.1}x  (cache: {} hits, {} misses, {} bytes held)",
        totals.hits, totals.misses, totals.bytes
    );
    if !smoke && speedup < 5.0 {
        println!("WARNING: expected ≥ 5x warm-vs-cold on the suite");
    }

    drop(connection);
    let Ok(Response::Shutdown) = client::send(&addr, &Request::Shutdown) else {
        panic!("shutdown failed");
    };
    daemon
        .join()
        .expect("server thread")
        .expect("clean server exit");
}
