//! # plim-bench — experiment harnesses
//!
//! Shared measurement pipeline for the binaries that regenerate the paper's
//! experimental artifacts:
//!
//! * `table1` — the full Table 1 (naive | MIG rewriting | rewriting +
//!   compilation) over the benchmark suite;
//! * `motivation` — the §3 example programs (Fig. 3a/3b);
//! * `ablation` — candidate-selection, allocator-strategy and
//!   rewrite-effort ablations.

use mig::analysis::improvement_percent;
use mig::rewrite::rewrite;
use mig::Mig;
use plim_compiler::{compile, CompiledProgram, CompilerOptions};

/// Rewrite effort used throughout the evaluation (the paper fixes 4).
pub const PAPER_EFFORT: usize = 4;

/// Measured `(#N, #I, #R)` of one compilation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// MIG majority nodes translated.
    pub nodes: usize,
    /// RM3 instructions.
    pub instructions: usize,
    /// Work RRAMs.
    pub rams: usize,
}

impl From<&CompiledProgram> for Point {
    fn from(compiled: &CompiledProgram) -> Self {
        Point {
            nodes: compiled.stats.mig_nodes,
            instructions: compiled.stats.instructions,
            rams: compiled.stats.rams as usize,
        }
    }
}

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Benchmark name.
    pub name: String,
    /// Primary inputs of the built circuit.
    pub pi: usize,
    /// Primary outputs.
    pub po: usize,
    /// Naive translation of the initial (unoptimized) MIG.
    pub naive: Point,
    /// Naive translation after MIG rewriting.
    pub rewritten: Point,
    /// Smart compilation after MIG rewriting.
    pub compiled: Point,
}

impl MeasuredRow {
    /// Instruction improvement of rewriting over naive, in percent.
    pub fn rewrite_instr_impr(&self) -> f64 {
        improvement_percent(self.naive.instructions, self.rewritten.instructions)
    }

    /// RRAM improvement of rewriting over naive, in percent.
    pub fn rewrite_ram_impr(&self) -> f64 {
        improvement_percent(self.naive.rams, self.rewritten.rams)
    }

    /// Instruction improvement of rewriting + compilation over naive.
    pub fn compiled_instr_impr(&self) -> f64 {
        improvement_percent(self.naive.instructions, self.compiled.instructions)
    }

    /// RRAM improvement of rewriting + compilation over naive.
    pub fn compiled_ram_impr(&self) -> f64 {
        improvement_percent(self.naive.rams, self.compiled.rams)
    }
}

/// Runs the full paper pipeline on one circuit: naive compilation of the
/// initial MIG, rewriting (at `effort`), naive compilation of the rewritten
/// MIG, and smart compilation of the rewritten MIG.
pub fn measure(name: &str, mig: &Mig, effort: usize) -> MeasuredRow {
    let naive = compile(mig, CompilerOptions::naive());
    let rewritten_mig = rewrite(mig, effort);
    let rewritten = compile(&rewritten_mig, CompilerOptions::naive());
    let smart = compile(&rewritten_mig, CompilerOptions::new());
    MeasuredRow {
        name: name.to_string(),
        pi: mig.num_inputs(),
        po: mig.num_outputs(),
        naive: Point::from(&naive),
        rewritten: Point::from(&rewritten),
        compiled: Point::from(&smart),
    }
}

/// Accumulates the Σ row over measured rows.
pub fn totals(rows: &[MeasuredRow]) -> MeasuredRow {
    let zero = Point {
        nodes: 0,
        instructions: 0,
        rams: 0,
    };
    let mut sum = MeasuredRow {
        name: "Σ".to_string(),
        pi: 0,
        po: 0,
        naive: zero,
        rewritten: zero,
        compiled: zero,
    };
    for row in rows {
        sum.pi += row.pi;
        sum.po += row.po;
        for (acc, point) in [
            (&mut sum.naive, &row.naive),
            (&mut sum.rewritten, &row.rewritten),
            (&mut sum.compiled, &row.compiled),
        ] {
            acc.nodes += point.nodes;
            acc.instructions += point.instructions;
            acc.rams += point.rams;
        }
    }
    sum
}

/// Formats one row in the paper's Table 1 layout.
pub fn format_row(row: &MeasuredRow) -> String {
    format!(
        "{:<11} {:>4}/{:<4} | {:>7} {:>8} {:>6} | {:>7} {:>8} {:>7.2}% {:>6} {:>7.2}% | {:>8} {:>7.2}% {:>6} {:>7.2}%",
        row.name,
        row.pi,
        row.po,
        row.naive.nodes,
        row.naive.instructions,
        row.naive.rams,
        row.rewritten.nodes,
        row.rewritten.instructions,
        row.rewrite_instr_impr(),
        row.rewritten.rams,
        row.rewrite_ram_impr(),
        row.compiled.instructions,
        row.compiled_instr_impr(),
        row.compiled.rams,
        row.compiled_ram_impr(),
    )
}

/// The table header matching [`format_row`].
pub fn table_header() -> String {
    format!(
        "{:<11} {:>4}/{:<4} | {:>7} {:>8} {:>6} | {:>7} {:>8} {:>8} {:>6} {:>8} | {:>8} {:>8} {:>6} {:>8}\n{}",
        "Benchmark",
        "PI",
        "PO",
        "#N",
        "#I",
        "#R",
        "#N",
        "#I",
        "impr.",
        "#R",
        "impr.",
        "#I",
        "impr.",
        "#R",
        "impr.",
        "-".repeat(132)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim_benchmarks::suite::{build, Scale};

    #[test]
    fn measure_produces_consistent_points() {
        let mig = build("adder", Scale::Reduced).unwrap();
        let row = measure("adder", &mig, 2);
        assert_eq!(row.pi, 16);
        assert_eq!(row.po, 9);
        assert!(row.naive.instructions >= row.naive.nodes);
        assert!(row.rewritten.nodes <= row.naive.nodes);
        // Rewriting must pay off on the AOIG-style adder.
        assert!(row.rewrite_instr_impr() > 0.0);
        assert!(row.compiled.instructions <= row.rewritten.instructions);
    }

    #[test]
    fn totals_accumulate() {
        let mig = build("dec", Scale::Reduced).unwrap();
        let row = measure("dec", &mig, 1);
        let sum = totals(&[row.clone(), row.clone()]);
        assert_eq!(sum.naive.instructions, 2 * row.naive.instructions);
        assert_eq!(sum.pi, 2 * row.pi);
    }

    #[test]
    fn formatting_has_fixed_shape() {
        let mig = build("ctrl", Scale::Reduced).unwrap();
        let row = measure("ctrl", &mig, 1);
        let line = format_row(&row);
        assert!(line.contains('|'));
        assert!(line.contains('%'));
        assert!(table_header().contains("Benchmark"));
    }
}
