//! # plim-bench — experiment harnesses
//!
//! Shared measurement pipeline for the binaries that regenerate the paper's
//! experimental artifacts:
//!
//! * `table1` — the full Table 1 (naive | MIG rewriting | rewriting +
//!   compilation) over the benchmark suite, batch-compiled across cores;
//! * `motivation` — the §3 example programs (Fig. 3a/3b);
//! * `ablation` — candidate-selection, allocator-strategy and
//!   rewrite-effort ablations, batch-compiled across cores.
//!
//! The measurement vocabulary ([`Point`], [`MeasuredRow`], [`measure`],
//! [`measure_suite`]) and the parallel driver live in
//! [`plim_compiler::batch`]; this crate re-exports them and adds the
//! suite-loading glue.

pub use plim_compiler::batch::{
    bench_suite, format_row, measure, measure_suite, run_batch, table_header, totals, BatchReport,
    BenchRun, Circuit, JobResult, JobSpec, MeasuredRow, Point, RewriteEffort, RewritePass,
    SuiteRun, PAPER_EFFORT,
};
pub use plim_compiler::benchfile::{self, BenchRecord};
pub use plim_parallel::Parallelism;

use plim_benchmarks::suite::{self, Scale};

/// Builds every Table 1 benchmark as a batch [`Circuit`], in the paper's
/// row order.
pub fn suite_circuits(scale: Scale) -> Vec<Circuit> {
    suite::ALL
        .iter()
        .map(|&name| Circuit::new(name, suite::build(name, scale).expect("known benchmark")))
        .collect()
}

/// Builds a named subset of the suite as batch [`Circuit`]s.
///
/// # Panics
///
/// Panics if a name is not a Table 1 benchmark.
pub fn circuits_named(names: &[&str], scale: Scale) -> Vec<Circuit> {
    names
        .iter()
        .map(|&name| Circuit::new(name, suite::build(name, scale).expect("known benchmark")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_circuits_cover_all_rows() {
        let circuits = suite_circuits(Scale::Reduced);
        assert_eq!(circuits.len(), suite::ALL.len());
        for (circuit, &name) in circuits.iter().zip(suite::ALL.iter()) {
            assert_eq!(circuit.name, name);
            assert!(circuit.mig.num_majority_nodes() > 0, "{name} is empty");
        }
    }

    #[test]
    fn named_subset_preserves_order() {
        let circuits = circuits_named(&["voter", "adder"], Scale::Reduced);
        assert_eq!(circuits[0].name, "voter");
        assert_eq!(circuits[1].name, "adder");
    }

    #[test]
    fn reexported_measure_matches_suite_pipeline() {
        let circuits = circuits_named(&["ctrl", "dec"], Scale::Reduced);
        let suite_run = measure_suite(&circuits, 1, Parallelism::Auto);
        for circuit in &circuits {
            let serial = measure(&circuit.name, &circuit.mig, 1);
            let batched = suite_run
                .rows
                .iter()
                .find(|row| row.name == circuit.name)
                .unwrap();
            assert_eq!(format_row(&serial), format_row(batched));
        }
        assert_eq!(suite_run.report.jobs.len(), 6);
    }
}
