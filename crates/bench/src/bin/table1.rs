//! Regenerates the paper's Table 1: naive translation vs MIG rewriting vs
//! rewriting + smart compilation, over all 18 benchmark-suite circuits.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p plim-bench --bin table1 [--reduced] [--effort N] [--verify]
//! ```
//!
//! `--reduced` builds the small test-scale circuits (fast); the default
//! full scale matches the paper's interfaces. `--verify` additionally
//! executes every compiled program on the PLiM machine simulator against
//! MIG simulation (slower).

use std::time::Instant;

use plim_bench::{format_row, measure, table_header, totals, MeasuredRow, PAPER_EFFORT};
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::{compile, verify::verify, CompilerOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reduced = args.iter().any(|a| a == "--reduced");
    let run_verify = args.iter().any(|a| a == "--verify");
    let effort = args
        .iter()
        .position(|a| a == "--effort")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(PAPER_EFFORT);
    let scale = if reduced { Scale::Reduced } else { Scale::Full };

    println!(
        "Table 1 reproduction (scale: {}, rewrite effort: {effort})",
        if reduced { "reduced" } else { "full" }
    );
    println!("{}", table_header());

    let mut rows: Vec<MeasuredRow> = Vec::new();
    for name in suite::ALL {
        let start = Instant::now();
        let mig = suite::build(name, scale).expect("known benchmark");
        let row = measure(name, &mig, effort);
        println!("{}   [{:.1?}]", format_row(&row), start.elapsed());
        if run_verify {
            let rewritten = mig::rewrite::rewrite(&mig, effort);
            let compiled = compile(&rewritten, CompilerOptions::new());
            verify(&rewritten, &compiled, 4, 0xDAC).expect("compiled program must match");
        }
        rows.push(row);
    }

    println!("{}", "-".repeat(132));
    println!("{}", format_row(&totals(&rows)));

    println!();
    println!("Paper Σ reference: rewriting #I −20.09% #R −14.83%; rewriting+compilation #I −19.95% #R −61.40%");
    let sum = totals(&rows);
    println!(
        "Measured Σ:        rewriting #I {:+.2}% #R {:+.2}%; rewriting+compilation #I {:+.2}% #R {:+.2}%",
        -sum.rewrite_instr_impr(),
        -sum.rewrite_ram_impr(),
        -sum.compiled_instr_impr(),
        -sum.compiled_ram_impr(),
    );
}
