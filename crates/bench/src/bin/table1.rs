//! Regenerates the paper's Table 1: naive translation vs MIG rewriting vs
//! rewriting + smart compilation, over all 18 benchmark-suite circuits,
//! batch-compiled across CPU cores (per circuit, the naive and smart
//! variants share one rewrite pass).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p plim-bench --bin table1 [--reduced] [--effort N]
//!                                                [--jobs N] [--serial] [--verify]
//! ```
//!
//! `--reduced` builds the small test-scale circuits (fast); the default
//! full scale matches the paper's interfaces. `--jobs N` caps the worker
//! threads and `--serial` disables parallelism entirely (the output rows
//! are identical either way — scheduling only changes the wall clock).
//! `--verify` additionally executes every compiled program on the PLiM
//! machine simulator against MIG simulation (slower).

use plim_bench::{
    format_row, measure_suite, suite_circuits, table_header, Parallelism, PAPER_EFFORT,
};
use plim_benchmarks::suite::Scale;
use plim_compiler::verify::verify;

/// Parses the value following `flag`, exiting with an error on a missing or
/// unparsable value (matching `plimc bench` rather than silently falling
/// back to a default).
fn value_of(args: &[String], flag: &str) -> Option<usize> {
    let index = args.iter().position(|a| a == flag)?;
    match args.get(index + 1).map(|v| v.parse()) {
        Some(Ok(value)) => Some(value),
        _ => {
            eprintln!("{}: {flag} needs a number", env!("CARGO_BIN_NAME"));
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reduced = args.iter().any(|a| a == "--reduced");
    let run_verify = args.iter().any(|a| a == "--verify");
    let effort = value_of(&args, "--effort").unwrap_or(PAPER_EFFORT);
    let parallelism = if args.iter().any(|a| a == "--serial") {
        Parallelism::Serial
    } else {
        Parallelism::from_jobs(value_of(&args, "--jobs"))
    };
    let scale = if reduced { Scale::Reduced } else { Scale::Full };

    println!(
        "Table 1 reproduction (scale: {}, rewrite effort: {effort})",
        if reduced { "reduced" } else { "full" }
    );
    println!("{}", table_header());

    let circuits = suite_circuits(scale);
    let run = measure_suite(&circuits, effort, parallelism);
    for (index, row) in run.rows.iter().enumerate() {
        println!("{}   [{:.1?}]", format_row(row), run.row_time(index));
    }
    if run_verify {
        // Verify the smart-compiled program the batch actually produced
        // (job 3 of each circuit's triple) against the *original* MIG:
        // rewriting preserves the function, so this checks the rewrite and
        // the compilation in one pass without recomputing either.
        for (index, circuit) in circuits.iter().enumerate() {
            let compiled = &run.report.jobs[index * 3 + 2].compiled;
            verify(&circuit.mig, compiled, 4, 0xDAC).expect("compiled program must match");
        }
    }

    println!("{}", "-".repeat(132));
    println!("{}", format_row(&plim_bench::totals(&run.rows)));
    println!();
    println!("batch: {}", run.report.summary());

    println!();
    println!("Paper Σ reference: rewriting #I −20.09% #R −14.83%; rewriting+compilation #I −19.95% #R −61.40%");
    let sum = plim_bench::totals(&run.rows);
    println!(
        "Measured Σ:        rewriting #I {:+.2}% #R {:+.2}%; rewriting+compilation #I {:+.2}% #R {:+.2}%",
        -sum.rewrite_instr_impr(),
        -sum.rewrite_ram_impr(),
        -sum.compiled_instr_impr(),
        -sum.compiled_ram_impr(),
    );
}
