//! Reproduces the §3 motivation examples of the paper:
//!
//! * **Fig. 3(a)** — a two-node MIG before and after rewriting, showing how
//!   complement-edge redistribution shrinks both the program and the RRAM
//!   count (paper: 6 instructions / 2 RRAMs → 4 / 1).
//! * **Fig. 3(b)** — a six-node MIG translated naively (fixed child-order
//!   slots, paper: 19 instructions / 7 RRAMs) and with the smart
//!   translation and scheduling (paper: 15 instructions / 4 RRAMs).
//!
//! Run with `cargo run -p plim-bench --bin motivation`.

use mig::rewrite::rewrite;
use mig::{Mig, Signal};
use plim_compiler::{compile, CompilerOptions, OperandSelection, ScheduleOrder};

/// Fig. 3(a): `N2 = ⟨i2 ī4 N̄1⟩` with `N1 = ⟨i1 ī2 ī3⟩` (reconstructed from
/// the paper's program listing) — before rewriting, `N1` carries two
/// complemented edges and is itself consumed complemented.
fn fig3a() -> Mig {
    let mut mig = Mig::new();
    let i1 = mig.add_input("i1");
    let i2 = mig.add_input("i2");
    let i3 = mig.add_input("i3");
    let i4 = mig.add_input("i4");
    let n1 = mig.maj(i1, !i2, !i3);
    let n2 = mig.maj(i2, !i4, !n1);
    mig.add_output("f", n2);
    mig
}

/// Fig. 3(b): the six-node MIG reconstructed from the paper's listings.
fn fig3b() -> Mig {
    let mut mig = Mig::new();
    let i1 = mig.add_input("i1");
    let i2 = mig.add_input("i2");
    let i3 = mig.add_input("i3");
    let n1 = mig.maj(Signal::FALSE, i1, i2);
    let n2 = mig.maj(Signal::TRUE, !i2, i3);
    let n3 = mig.maj(i1, i2, i3);
    let n4 = mig.maj(Signal::TRUE, n1, i3);
    let n5 = mig.maj(n1, !n2, n3);
    let n6 = mig.maj(n4, !n5, n1);
    mig.add_output("f", n6);
    mig
}

fn show(title: &str, mig: &Mig, options: CompilerOptions) {
    let compiled = compile(mig, options);
    println!(
        "── {title}: {} instructions, {} RRAMs",
        compiled.stats.instructions, compiled.stats.rams
    );
    print!("{}", compiled.program);
    println!();
}

fn main() {
    println!("═══ Fig. 3(a): effect of MIG rewriting ═══\n");
    let before = fig3a();
    let after = rewrite(&before, 4);
    show(
        "before rewriting (naive translation)",
        &before,
        CompilerOptions::naive(),
    );
    show(
        "after rewriting  (naive translation)",
        &after,
        CompilerOptions::naive(),
    );
    println!("paper reference: 6 → 4 instructions, 2 → 1 RRAMs\n");

    println!("═══ Fig. 3(b): effect of translation order and operand selection ═══\n");
    let mig = fig3b();
    show(
        "naive: index order, child-order slots",
        &mig,
        CompilerOptions::naive()
            .schedule(ScheduleOrder::Index)
            .operands(OperandSelection::ChildOrder),
    );
    show(
        "smart: priority order, case-based selection",
        &mig,
        CompilerOptions::new(),
    );
    println!("paper reference: 19 → 15 instructions, 7 → 4 RRAMs");
    println!("(the naive count differs from the paper's 19 because this library");
    println!(" canonically sorts node children, while the paper's fixed-slot naive");
    println!(" consumes the netlist's original — more favorable — child order)");
}
