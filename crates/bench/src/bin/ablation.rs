//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Candidate selection** (§4.2.1): priority-queue vs index-order
//!    scheduling, on rewritten MIGs — isolates the `#R` contribution of the
//!    scheduler.
//! 2. **Operand selection** (§4.2.2): smart case analysis vs fixed
//!    child-order slots — isolates the `#I` contribution of translation.
//! 3. **Allocator strategy** (§4.2.3): FIFO vs LIFO vs fresh-only — FIFO
//!    and LIFO tie on `#R`, but FIFO levels wear across cells (endurance).
//! 4. **Rewrite effort**: 0–8 cycles (the paper fixes 4).
//!
//! Run with `cargo run --release -p plim-bench --bin ablation [--reduced]`.

use mig::rewrite::rewrite;
use plim_bench::PAPER_EFFORT;
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::{compile, AllocatorStrategy, CompilerOptions, OperandSelection};

/// Benchmarks used for the ablations (a representative, fast subset).
const CIRCUITS: [&str; 6] = ["adder", "bar", "max", "voter", "i2c", "priority"];

fn main() {
    let reduced = std::env::args().any(|a| a == "--reduced");
    let scale = if reduced { Scale::Reduced } else { Scale::Full };

    candidate_selection_ablation(scale);
    operand_selection_ablation(scale);
    allocator_ablation(scale);
    effort_sweep(scale);
}

fn candidate_selection_ablation(scale: Scale) {
    println!("═══ Ablation 1: candidate selection (scheduling) — #R on rewritten MIGs ═══");
    println!(
        "{:<11} {:>10} {:>10} {:>9}",
        "Benchmark", "index #R", "priority #R", "impr."
    );
    for name in CIRCUITS {
        let mig = rewrite(&suite::build(name, scale).unwrap(), PAPER_EFFORT);
        let index = compile(&mig, CompilerOptions::naive());
        let priority = compile(&mig, CompilerOptions::new());
        println!(
            "{:<11} {:>10} {:>10} {:>8.2}%",
            name,
            index.stats.rams,
            priority.stats.rams,
            improvement(index.stats.rams as usize, priority.stats.rams as usize),
        );
    }
    println!();
}

fn operand_selection_ablation(scale: Scale) {
    println!("═══ Ablation 2: operand selection (translation) — #I on rewritten MIGs ═══");
    println!(
        "{:<11} {:>12} {:>10} {:>9}",
        "Benchmark", "child-order", "smart #I", "impr."
    );
    for name in CIRCUITS {
        let mig = rewrite(&suite::build(name, scale).unwrap(), PAPER_EFFORT);
        let fixed = compile(
            &mig,
            CompilerOptions::naive().operands(OperandSelection::ChildOrder),
        );
        let smart = compile(&mig, CompilerOptions::naive());
        println!(
            "{:<11} {:>12} {:>10} {:>8.2}%",
            name,
            fixed.stats.instructions,
            smart.stats.instructions,
            improvement(fixed.stats.instructions, smart.stats.instructions),
        );
    }
    println!();
}

fn allocator_ablation(scale: Scale) {
    println!("═══ Ablation 3: allocator strategy — #R and endurance (max writes/cell) ═══");
    println!(
        "{:<11} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "Benchmark", "fifo #R", "lifo #R", "fresh #R", "fifo max-w", "lifo max-w"
    );
    for name in CIRCUITS {
        let mig = rewrite(&suite::build(name, scale).unwrap(), PAPER_EFFORT);
        let run = |strategy| {
            let compiled = compile(&mig, CompilerOptions::new().allocator(strategy));
            let endurance = compiled.static_endurance();
            (compiled.stats.rams, endurance.max_writes)
        };
        let (fifo_r, fifo_w) = run(AllocatorStrategy::Fifo);
        let (lifo_r, lifo_w) = run(AllocatorStrategy::Lifo);
        let (fresh_r, _) = run(AllocatorStrategy::Fresh);
        println!(
            "{:<11} {:>8} {:>8} {:>8} {:>10} {:>10}",
            name, fifo_r, lifo_r, fresh_r, fifo_w, lifo_w
        );
    }
    println!("(FIFO and LIFO reuse cells equally well; the max-writes columns show");
    println!(" how the reuse policy shifts wear between cells — FIFO rotates through");
    println!(" the free pool while LIFO hammers the most recently released cells)");
    println!();
}

fn effort_sweep(scale: Scale) {
    println!("═══ Ablation 4: rewrite effort sweep — #N / #I after k cycles ═══");
    print!("{:<11}", "Benchmark");
    for effort in [0usize, 1, 2, 4, 8] {
        print!(" {:>14}", format!("effort {effort}"));
    }
    println!();
    for name in CIRCUITS {
        let mig = suite::build(name, scale).unwrap();
        print!("{:<11}", name);
        for effort in [0usize, 1, 2, 4, 8] {
            let rewritten = rewrite(&mig, effort);
            let compiled = compile(&rewritten, CompilerOptions::new());
            print!(
                " {:>14}",
                format!(
                    "{}/{}",
                    rewritten.num_majority_nodes(),
                    compiled.stats.instructions
                )
            );
        }
        println!();
    }
    println!("(the paper fixes effort = 4; the sweep shows where returns diminish)");
}

fn improvement(old: usize, new: usize) -> f64 {
    if old == 0 {
        0.0
    } else {
        (old as f64 - new as f64) / old as f64 * 100.0
    }
}
