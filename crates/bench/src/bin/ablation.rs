//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Candidate selection** (§4.2.1): priority-queue vs index-order
//!    scheduling, on rewritten MIGs — isolates the `#R` contribution of the
//!    scheduler.
//! 2. **Operand selection** (§4.2.2): smart case analysis vs fixed
//!    child-order slots — isolates the `#I` contribution of translation.
//! 3. **Scheduling × allocation sweep**: every [`ScheduleOrder`] crossed
//!    with every [`AllocatorStrategy`], reporting `#I` / `#R` / max
//!    cell-writes per combination — where the lifetime-driven lookahead
//!    scheduler and the wear-budget/lifetime-binned allocators earn (or
//!    fail to earn) their keep, per circuit.
//! 4. **Rewrite effort**: 0–8 cycles (the paper fixes 4).
//!
//! All four studies are expressed as **one batch job matrix** and executed
//! through `plim_compiler::batch`: studies 1–3 and the effort-4 column of
//! study 4 share a single memoized rewrite pass per circuit.
//!
//! Run with `cargo run --release -p plim-bench --bin ablation [--reduced]
//! [--jobs N] [--serial]`.

use plim_bench::{
    circuits_named, run_batch, BatchReport, Circuit, JobSpec, Parallelism, RewriteEffort,
    PAPER_EFFORT,
};
use plim_benchmarks::suite::Scale;
use plim_compiler::{AllocatorStrategy, CompilerOptions, OperandSelection, ScheduleOrder};

/// Benchmarks used for the ablations (a representative, fast subset).
const CIRCUITS: [&str; 6] = ["adder", "bar", "max", "voter", "i2c", "priority"];

/// Rewrite efforts of the sweep (the paper fixes 4).
const EFFORTS: [usize; 5] = [0, 1, 2, 4, 8];

/// Schedules crossed with every allocator in study 3 (index order is
/// covered separately by study 1).
const SWEEP_SCHEDULES: [ScheduleOrder; 2] = [ScheduleOrder::Priority, ScheduleOrder::Lookahead];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reduced = args.iter().any(|a| a == "--reduced");
    let scale = if reduced { Scale::Reduced } else { Scale::Full };
    let jobs = args.iter().position(|a| a == "--jobs").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("ablation: --jobs needs a number");
                std::process::exit(1);
            })
    });
    let parallelism = if args.iter().any(|a| a == "--serial") {
        Parallelism::Serial
    } else {
        Parallelism::from_jobs(jobs)
    };

    let circuits = circuits_named(&CIRCUITS, scale);
    let paper = RewriteEffort::Effort(PAPER_EFFORT);

    // One job matrix for all four studies; sections are sliced back out of
    // the (deterministically ordered) report below.
    let mut specs: Vec<JobSpec> = Vec::new();
    for c in 0..circuits.len() {
        specs.push(JobSpec::new(c, paper, CompilerOptions::naive()));
        specs.push(JobSpec::new(c, paper, CompilerOptions::new()));
    }
    for c in 0..circuits.len() {
        specs.push(JobSpec::new(
            c,
            paper,
            CompilerOptions::naive().operands(OperandSelection::ChildOrder),
        ));
        specs.push(JobSpec::new(c, paper, CompilerOptions::naive()));
    }
    for c in 0..circuits.len() {
        for schedule in SWEEP_SCHEDULES {
            for strategy in AllocatorStrategy::ALL {
                specs.push(JobSpec::new(
                    c,
                    paper,
                    CompilerOptions::new()
                        .schedule(schedule)
                        .allocator(strategy),
                ));
            }
        }
    }
    for c in 0..circuits.len() {
        for effort in EFFORTS {
            specs.push(JobSpec::new(
                c,
                RewriteEffort::Effort(effort),
                CompilerOptions::new(),
            ));
        }
    }

    let report = run_batch(&circuits, &specs, parallelism);
    let n = circuits.len();
    let combos = SWEEP_SCHEDULES.len() * AllocatorStrategy::ALL.len();
    let (scheduling, rest) = report.jobs.split_at(2 * n);
    let (operands, rest) = rest.split_at(2 * n);
    let (allocators, sweep) = rest.split_at(combos * n);

    candidate_selection_ablation(&circuits, scheduling);
    operand_selection_ablation(&circuits, operands);
    schedule_allocation_sweep(&circuits, allocators);
    effort_sweep(&circuits, sweep, &report);
    println!("batch: {}", report.summary());
}

fn candidate_selection_ablation(circuits: &[Circuit], jobs: &[plim_bench::JobResult]) {
    println!("═══ Ablation 1: candidate selection (scheduling) — #R on rewritten MIGs ═══");
    println!(
        "{:<11} {:>10} {:>10} {:>9}",
        "Benchmark", "index #R", "priority #R", "impr."
    );
    for (c, pair) in jobs.chunks(2).enumerate() {
        let (index, priority) = (&pair[0].compiled, &pair[1].compiled);
        println!(
            "{:<11} {:>10} {:>10} {:>8.2}%",
            circuits[c].name,
            index.stats.rams,
            priority.stats.rams,
            improvement(index.stats.rams as usize, priority.stats.rams as usize),
        );
    }
    println!();
}

fn operand_selection_ablation(circuits: &[Circuit], jobs: &[plim_bench::JobResult]) {
    println!("═══ Ablation 2: operand selection (translation) — #I on rewritten MIGs ═══");
    println!(
        "{:<11} {:>12} {:>10} {:>9}",
        "Benchmark", "child-order", "smart #I", "impr."
    );
    for (c, pair) in jobs.chunks(2).enumerate() {
        let (fixed, smart) = (&pair[0].compiled, &pair[1].compiled);
        println!(
            "{:<11} {:>12} {:>10} {:>8.2}%",
            circuits[c].name,
            fixed.stats.instructions,
            smart.stats.instructions,
            improvement(fixed.stats.instructions, smart.stats.instructions),
        );
    }
    println!();
}

fn schedule_allocation_sweep(circuits: &[Circuit], jobs: &[plim_bench::JobResult]) {
    println!("═══ Ablation 3: scheduling × allocation — #I / #R / max writes per cell ═══");
    print!("{:<11} {:<10}", "Benchmark", "schedule");
    for strategy in AllocatorStrategy::ALL {
        print!(" {:>14}", strategy.name());
    }
    println!();
    let per_circuit = SWEEP_SCHEDULES.len() * AllocatorStrategy::ALL.len();
    for (c, block) in jobs.chunks(per_circuit).enumerate() {
        for (s, row) in block.chunks(AllocatorStrategy::ALL.len()).enumerate() {
            print!("{:<11} {:<10}", circuits[c].name, SWEEP_SCHEDULES[s].name());
            for job in row {
                let stats = &job.compiled.stats;
                print!(
                    " {:>14}",
                    format!(
                        "{}/{}/{}",
                        stats.instructions, stats.rams, stats.max_cell_writes
                    )
                );
            }
            println!();
        }
    }
    println!("(reuse policy never changes #I; the scheduler changes #R; the wear and");
    println!(" binned policies trade free-pool rotation for lower peak cell wear)");
    println!();
}

fn effort_sweep(circuits: &[Circuit], jobs: &[plim_bench::JobResult], report: &BatchReport) {
    println!("═══ Ablation 4: rewrite effort sweep — #N / #I after k cycles ═══");
    print!("{:<11}", "Benchmark");
    for effort in EFFORTS {
        print!(" {:>14}", format!("effort {effort}"));
    }
    println!();
    let rewritten_nodes = |circuit: usize, effort: usize| {
        report
            .rewrites
            .iter()
            .find(|pass| pass.circuit == circuit && pass.effort == effort)
            .expect("sweep jobs rewrite every (circuit, effort)")
            .nodes
    };
    for (c, row) in jobs.chunks(EFFORTS.len()).enumerate() {
        print!("{:<11}", circuits[c].name);
        for (job, effort) in row.iter().zip(EFFORTS) {
            print!(
                " {:>14}",
                format!(
                    "{}/{}",
                    rewritten_nodes(c, effort),
                    job.compiled.stats.instructions
                )
            );
        }
        println!();
    }
    println!("(the paper fixes effort = 4; the sweep shows where returns diminish)");
    println!();
}

fn improvement(old: usize, new: usize) -> f64 {
    if old == 0 {
        0.0
    } else {
        (old as f64 - new as f64) / old as f64 * 100.0
    }
}
