//! The PLiM instruction set: the single RM3 instruction.
//!
//! The PLiM computer (Gaillardon et al., DATE'16) executes one instruction,
//! 3-input resistive majority:
//!
//! ```text
//! RM3(A, B, Z):   Z ← ⟨A B̄ Z⟩
//! ```
//!
//! where `A` and `B` are single-bit operands read from constants, primary
//! inputs, or RRAM cells, and `Z` is the address of the destination RRAM
//! cell, whose stored value participates in the majority and is overwritten
//! by the result. The inversion of the second operand is intrinsic to the
//! RRAM write mechanism (Linn et al. 2012), which is why Majority-Inverter
//! Graphs map so directly onto this architecture.

use std::fmt;

/// Address of a work RRAM cell inside the PLiM memory array.
///
/// Displayed as `@X1`, `@X2`, … matching the paper's program listings
/// (addresses are 0-based internally, 1-based in listings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RamAddr(pub u32);

impl RamAddr {
    /// The raw cell index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RamAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@X{}", self.0 + 1)
    }
}

/// A single-bit operand of an RM3 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A constant 0 or 1 applied to the array terminal.
    Const(bool),
    /// Primary input with the given index, read from the input region of the
    /// memory array.
    Input(u32),
    /// A work RRAM cell.
    Ram(RamAddr),
}

impl Operand {
    /// `true` if the operand is a constant.
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Operand::Const(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(v) => write!(f, "{}", *v as u8),
            Operand::Input(i) => write!(f, "i{}", i + 1),
            Operand::Ram(addr) => write!(f, "{addr}"),
        }
    }
}

impl From<bool> for Operand {
    fn from(value: bool) -> Self {
        Operand::Const(value)
    }
}

impl From<RamAddr> for Operand {
    fn from(addr: RamAddr) -> Self {
        Operand::Ram(addr)
    }
}

/// One RM3 instruction: `Z ← ⟨A B̄ Z⟩`.
///
/// # Examples
///
/// ```
/// use plim::{Instruction, Operand, RamAddr};
///
/// // X1 ← 0  (the canonical reset idiom: ⟨0 1̄ Z⟩ = ⟨0 0 Z⟩ = 0)
/// let reset = Instruction::new(Operand::Const(false), Operand::Const(true), RamAddr(0));
/// assert_eq!(reset.to_string(), "0, 1, @X1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    /// First operand (applied non-inverted).
    pub a: Operand,
    /// Second operand (inverted intrinsically by the RRAM write).
    pub b: Operand,
    /// Destination cell; its current value is the third majority operand.
    pub z: RamAddr,
}

impl Instruction {
    /// Creates an RM3 instruction.
    pub fn new(a: Operand, b: Operand, z: RamAddr) -> Self {
        Instruction { a, b, z }
    }

    /// The canonical "reset to 0" idiom `(0, 1, @Z)`.
    pub fn reset(z: RamAddr) -> Self {
        Instruction::new(Operand::Const(false), Operand::Const(true), z)
    }

    /// The canonical "set to 1" idiom `(1, 0, @Z)`.
    pub fn set(z: RamAddr) -> Self {
        Instruction::new(Operand::Const(true), Operand::Const(false), z)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}, {}", self.a, self.b, self.z)
    }
}

/// Where a program's primary-output value resides after execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputLoc {
    /// The output is stored in a work RRAM cell.
    Ram(RamAddr),
    /// The output equals a primary input (possibly complemented) — the
    /// compiler does not copy pass-through outputs unless asked to.
    Input {
        /// Input index.
        index: u32,
        /// Whether the output is the complement of the input.
        complemented: bool,
    },
    /// The output is a constant.
    Const(bool),
}

/// A PLiM program: a sequence of RM3 instructions plus interface metadata.
///
/// Programs are produced by the `plim-compiler` crate and executed by
/// [`crate::Machine`].
#[derive(Debug, Clone, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
    comments: Vec<String>,
    num_inputs: usize,
    num_rams: u32,
    outputs: Vec<(String, OutputLoc)>,
}

impl Program {
    /// Creates an empty program over `num_inputs` primary inputs.
    pub fn new(num_inputs: usize) -> Self {
        Program {
            num_inputs,
            ..Program::default()
        }
    }

    /// Appends an instruction with an empty comment.
    pub fn push(&mut self, instruction: Instruction) {
        self.push_commented(instruction, String::new());
    }

    /// Appends an instruction with a listing comment (e.g. `X1 ← N3`).
    pub fn push_commented(&mut self, instruction: Instruction, comment: impl Into<String>) {
        if instruction.z.0 >= self.num_rams {
            self.num_rams = instruction.z.0 + 1;
        }
        if let Operand::Ram(addr) = instruction.a {
            self.num_rams = self.num_rams.max(addr.0 + 1);
        }
        if let Operand::Ram(addr) = instruction.b {
            self.num_rams = self.num_rams.max(addr.0 + 1);
        }
        self.instructions.push(instruction);
        self.comments.push(comment.into());
    }

    /// The instruction sequence.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The listing comment of instruction `index` (may be empty).
    pub fn comment(&self, index: usize) -> &str {
        &self.comments[index]
    }

    /// Number of instructions (`#I` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the program has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of primary inputs the program expects.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of distinct work RRAM cells referenced (`#R` in the paper).
    #[inline]
    pub fn num_rams(&self) -> u32 {
        self.num_rams
    }

    /// Declares where output `name` lives after execution.
    pub fn add_output(&mut self, name: impl Into<String>, loc: OutputLoc) {
        self.outputs.push((name.into(), loc));
    }

    /// The declared outputs.
    #[inline]
    pub fn outputs(&self) -> &[(String, OutputLoc)] {
        &self.outputs
    }
}

impl fmt::Display for Program {
    /// Formats the program as a paper-style listing:
    ///
    /// ```text
    /// 01: 0, 1, @X1      X1 ← 0
    /// 02: i3, 0, @X1     X1 ← i3
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.instructions.len().to_string().len().max(2);
        for (index, instruction) in self.instructions.iter().enumerate() {
            let comment = &self.comments[index];
            if comment.is_empty() {
                writeln!(f, "{:0width$}: {}", index + 1, instruction)?;
            } else {
                let text = instruction.to_string();
                writeln!(f, "{:0width$}: {:<18} {}", index + 1, text, comment)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_display_matches_paper() {
        assert_eq!(Operand::Const(false).to_string(), "0");
        assert_eq!(Operand::Const(true).to_string(), "1");
        assert_eq!(Operand::Input(2).to_string(), "i3");
        assert_eq!(Operand::Ram(RamAddr(0)).to_string(), "@X1");
    }

    #[test]
    fn instruction_idioms() {
        assert_eq!(Instruction::reset(RamAddr(4)).to_string(), "0, 1, @X5");
        assert_eq!(Instruction::set(RamAddr(4)).to_string(), "1, 0, @X5");
    }

    #[test]
    fn program_tracks_ram_high_water() {
        let mut p = Program::new(2);
        p.push(Instruction::reset(RamAddr(0)));
        p.push(Instruction::new(
            Operand::Ram(RamAddr(3)),
            Operand::Input(0),
            RamAddr(1),
        ));
        assert_eq!(p.num_rams(), 4);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn listing_format() {
        let mut p = Program::new(3);
        p.push_commented(Instruction::reset(RamAddr(0)), "X1 ← 0");
        p.push_commented(
            Instruction::new(Operand::Input(2), Operand::Const(false), RamAddr(0)),
            "X1 ← i3",
        );
        let text = p.to_string();
        assert!(text.contains("01: 0, 1, @X1"));
        assert!(text.contains("02: i3, 0, @X1"));
        assert!(text.contains("X1 ← i3"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Operand::from(true), Operand::Const(true));
        assert_eq!(Operand::from(RamAddr(7)), Operand::Ram(RamAddr(7)));
        assert!(Operand::Const(false).is_const());
        assert!(!Operand::Input(0).is_const());
    }

    #[test]
    fn outputs_are_recorded() {
        let mut p = Program::new(1);
        p.add_output("f", OutputLoc::Ram(RamAddr(0)));
        p.add_output("g", OutputLoc::Const(true));
        p.add_output(
            "h",
            OutputLoc::Input {
                index: 0,
                complemented: true,
            },
        );
        assert_eq!(p.outputs().len(), 3);
    }
}
