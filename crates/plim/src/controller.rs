//! Architectural cost model of the PLiM controller (Fig. 2 of the paper).
//!
//! The [`crate::Machine`] simulator is purely functional; this module adds
//! the architecture-level accounting of the PLiM computer: the controller
//! stores the program *inside* the RRAM array, so executing one RM3
//! instruction costs instruction-fetch reads, operand reads, and the
//! majority write — each with configurable latency and energy derived from
//! RRAM device literature.

use crate::error::MachineError;
use crate::isa::{Operand, Program};
use crate::machine::Machine;

/// Per-operation device costs.
///
/// Defaults follow commonly cited HfOₓ/TaOₓ RRAM figures: 10 ns / 1 pJ per
/// read, 100 ns / 10 pJ per write. All fields are public so studies can
/// sweep them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Array read latency in nanoseconds.
    pub read_ns: f64,
    /// Array write (RM3) latency in nanoseconds.
    pub write_ns: f64,
    /// Energy per array read in picojoules.
    pub read_pj: f64,
    /// Energy per array write in picojoules.
    pub write_pj: f64,
    /// Array words fetched per instruction (operand A, operand B,
    /// destination address — the instruction format of §2.2).
    pub fetch_words: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_ns: 10.0,
            write_ns: 100.0,
            read_pj: 1.0,
            write_pj: 10.0,
            fetch_words: 3,
        }
    }
}

/// Cost report of one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecutionReport {
    /// RM3 instructions executed.
    pub instructions: u64,
    /// Array reads: instruction fetches plus operand reads.
    pub reads: u64,
    /// Array writes (one per RM3).
    pub writes: u64,
    /// Estimated latency in nanoseconds.
    pub latency_ns: f64,
    /// Estimated energy in picojoules.
    pub energy_pj: f64,
}

impl ExecutionReport {
    /// Estimated latency in microseconds.
    pub fn latency_us(&self) -> f64 {
        self.latency_ns / 1000.0
    }
}

/// The PLiM controller: a [`Machine`] plus architectural accounting.
///
/// # Examples
///
/// ```
/// use plim::{controller::{Controller, CostModel}, Instruction, Program, RamAddr, OutputLoc};
///
/// let mut p = Program::new(0);
/// p.push(Instruction::reset(RamAddr(0)));
/// p.add_output("f", OutputLoc::Ram(RamAddr(0)));
///
/// let mut controller = Controller::new(CostModel::default());
/// let (outputs, report) = controller.execute(&p, &[]).unwrap();
/// assert_eq!(outputs, vec![false]);
/// assert_eq!(report.writes, 1);
/// assert!(report.latency_ns > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Controller {
    machine: Machine,
    cost: CostModel,
}

impl Controller {
    /// Creates a controller with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Controller {
            machine: Machine::new(),
            cost,
        }
    }

    /// The wrapped functional machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Executes a program, returning the outputs and the cost report.
    ///
    /// Operand reads are counted only for operands fetched from the array
    /// (work cells and primary inputs); constants are applied directly to
    /// the array terminals and cost nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`MachineError`] from the functional machine.
    pub fn execute(
        &mut self,
        program: &Program,
        inputs: &[bool],
    ) -> Result<(Vec<bool>, ExecutionReport), MachineError> {
        let mut report = ExecutionReport::default();
        for instruction in program.instructions() {
            report.instructions += 1;
            report.reads += self.cost.fetch_words;
            for operand in [instruction.a, instruction.b] {
                if !matches!(operand, Operand::Const(_)) {
                    report.reads += 1;
                }
            }
            report.writes += 1;
        }
        report.latency_ns =
            report.reads as f64 * self.cost.read_ns + report.writes as f64 * self.cost.write_ns;
        report.energy_pj =
            report.reads as f64 * self.cost.read_pj + report.writes as f64 * self.cost.write_pj;
        let outputs = self.machine.run(program, inputs)?;
        Ok((outputs, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, OutputLoc, RamAddr};

    fn two_instruction_program() -> Program {
        let mut p = Program::new(1);
        p.push(Instruction::reset(RamAddr(0))); // constants only
        p.push(Instruction::new(
            Operand::Input(0),
            Operand::Ram(RamAddr(0)),
            RamAddr(0),
        )); // two array operands
        p.add_output("f", OutputLoc::Ram(RamAddr(0)));
        p
    }

    #[test]
    fn read_accounting_distinguishes_constants() {
        let p = two_instruction_program();
        let mut controller = Controller::new(CostModel::default());
        let (_, report) = controller.execute(&p, &[true]).unwrap();
        assert_eq!(report.instructions, 2);
        // Fetch: 3 words per instruction; operands: 0 for the reset, 2 for
        // the second instruction.
        assert_eq!(report.reads, 3 + 3 + 2);
        assert_eq!(report.writes, 2);
    }

    #[test]
    fn latency_and_energy_follow_the_model() {
        let p = two_instruction_program();
        let cost = CostModel {
            read_ns: 1.0,
            write_ns: 10.0,
            read_pj: 2.0,
            write_pj: 20.0,
            fetch_words: 3,
        };
        let mut controller = Controller::new(cost);
        let (_, report) = controller.execute(&p, &[false]).unwrap();
        assert_eq!(report.latency_ns, 8.0 * 1.0 + 2.0 * 10.0);
        assert_eq!(report.energy_pj, 8.0 * 2.0 + 2.0 * 20.0);
        assert!((report.latency_us() - 0.028).abs() < 1e-9);
    }

    #[test]
    fn functional_result_matches_machine() {
        let p = two_instruction_program();
        let mut controller = Controller::new(CostModel::default());
        // Second instruction: Z ← ⟨i1, X̄1, X1⟩ with X1 = 0 → ⟨i1, 1, 0⟩ = i1.
        let (outputs, _) = controller.execute(&p, &[true]).unwrap();
        assert_eq!(outputs, vec![true]);
        let (outputs, _) = controller.execute(&p, &[false]).unwrap();
        assert_eq!(outputs, vec![false]);
    }

    #[test]
    fn errors_propagate() {
        let p = two_instruction_program();
        let mut controller = Controller::new(CostModel::default());
        assert!(controller.execute(&p, &[]).is_err());
    }
}
