//! # plim — the Programmable Logic-in-Memory architecture model
//!
//! The PLiM computer (Gaillardon et al., DATE'16) performs computation
//! *inside* a resistive memory array: a thin controller wraps a standard
//! RRAM array and executes a single instruction, the 3-input resistive
//! majority
//!
//! ```text
//! RM3(A, B, Z):   Z ← ⟨A B̄ Z⟩
//! ```
//!
//! which the physics of bipolar resistive switches implements natively in
//! one memory write. This crate models the architecture:
//!
//! * [`Instruction`], [`Operand`], [`Program`] — the RM3 ISA with
//!   paper-style program listings;
//! * [`Machine`] — a functional simulator with per-cell write counters;
//! * [`wide`] — a bit-parallel executor running 64 or 256 input patterns
//!   per instruction step, with fault-injection hooks;
//! * [`endurance`] — wear statistics, since RRAM endurance is a first-class
//!   concern for in-memory computing.
//!
//! Programs are normally produced from Majority-Inverter Graphs by the
//! `plim-compiler` crate; this crate is deliberately independent of the
//! logic representation.

pub mod asm;
pub mod controller;
pub mod endurance;
mod error;
mod isa;
mod machine;
pub mod wide;

pub use endurance::EnduranceStats;
pub use error::MachineError;
pub use isa::{Instruction, Operand, OutputLoc, Program, RamAddr};
pub use machine::Machine;
