//! Bit-parallel PLiM execution: many input patterns per instruction step.
//!
//! The scalar [`crate::Machine`] interprets one input vector at a time,
//! which is fine for spot checks but far too slow for exhaustive
//! equivalence over 2ⁿ input patterns or Monte-Carlo fault sweeps over
//! millions of invocations. The RM3 write is a pure bitwise function, so
//! it vectorizes trivially: store one *lane word* per cell instead of one
//! bool, where bit `k` of every word belongs to pattern `k`, and a single
//! `(a & !b) | (a & z) | (!b & z)` over whole words executes the
//! instruction for every pattern at once.
//!
//! [`WideMachine`] is generic over the lane word: `u64` gives 64 patterns
//! per step, [`W256`] packs 4×u64 for 256. The executor mirrors the scalar
//! machine exactly — same [`MachineError`] values, cells retained across
//! runs, write counters accumulating — so differential tests can compare
//! the two bit for bit. Write counters count *pattern executions*: one
//! wide write adds [`LaneWord::LANES`] to the destination cell's counter,
//! keeping wide totals equal to what the scalar machine would accumulate
//! running every lane separately.
//!
//! Fault injection hooks in through [`WriteHook`]: every value about to be
//! committed to a cell passes through the hook first, which lets a
//! scenario engine model stuck-at cells or probabilistically drifted
//! writes without the executor knowing anything about fault models.

use crate::endurance::EnduranceStats;
use crate::error::MachineError;
use crate::isa::{Instruction, Operand, OutputLoc, Program, RamAddr};
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A machine word holding one bit per simulated input pattern (lane).
///
/// Implemented by `u64` (64 lanes) and [`W256`] (256 lanes). The bitwise
/// supertraits are all the executor needs to run RM3 across every lane in
/// one operation.
pub trait LaneWord:
    Copy
    + fmt::Debug
    + PartialEq
    + Eq
    + Not<Output = Self>
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
{
    /// Number of input patterns carried per word.
    const LANES: usize;

    /// Number of `u64` blocks per word (`LANES / 64`).
    const WORDS: usize;

    /// The all-zeros word.
    fn zero() -> Self;

    /// The all-ones word.
    fn ones() -> Self;

    /// Broadcasts one bit into every lane.
    fn splat(bit: bool) -> Self {
        if bit {
            Self::ones()
        } else {
            Self::zero()
        }
    }

    /// Builds a word from its `u64` blocks; `f(i)` supplies block `i`
    /// (block 0 holds lanes 0–63, block 1 lanes 64–127, …).
    fn from_blocks(f: impl FnMut(usize) -> u64) -> Self;

    /// The `u64` block at `index` (lanes `64·index .. 64·index + 64`).
    fn block(self, index: usize) -> u64;

    /// The bit carried by `lane`.
    fn lane(self, lane: usize) -> bool {
        self.block(lane / 64) >> (lane % 64) & 1 == 1
    }

    /// Number of set bits across all lanes.
    fn count_ones(self) -> u32 {
        (0..Self::WORDS).map(|i| self.block(i).count_ones()).sum()
    }
}

impl LaneWord for u64 {
    const LANES: usize = 64;
    const WORDS: usize = 1;

    fn zero() -> Self {
        0
    }

    fn ones() -> Self {
        u64::MAX
    }

    fn from_blocks(mut f: impl FnMut(usize) -> u64) -> Self {
        f(0)
    }

    fn block(self, index: usize) -> u64 {
        debug_assert_eq!(index, 0);
        self
    }
}

/// A 256-lane word: four `u64` blocks operated on element-wise.
///
/// Wide enough that the compiler can keep the whole RM3 update in vector
/// registers on AVX2-class hardware, while staying plain portable Rust.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct W256(pub [u64; 4]);

macro_rules! w256_bitop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for W256 {
            type Output = W256;
            fn $method(self, rhs: W256) -> W256 {
                W256([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }
    };
}

w256_bitop!(BitAnd, bitand, &);
w256_bitop!(BitOr, bitor, |);
w256_bitop!(BitXor, bitxor, ^);

impl Not for W256 {
    type Output = W256;
    fn not(self) -> W256 {
        W256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl LaneWord for W256 {
    const LANES: usize = 256;
    const WORDS: usize = 4;

    fn zero() -> Self {
        W256([0; 4])
    }

    fn ones() -> Self {
        W256([u64::MAX; 4])
    }

    fn from_blocks(mut f: impl FnMut(usize) -> u64) -> Self {
        W256([f(0), f(1), f(2), f(3)])
    }

    fn block(self, index: usize) -> u64 {
        self.0[index]
    }
}

/// Intercepts every value about to be written to a work cell.
///
/// The hook sees the *post-majority* value and returns what is actually
/// committed, so a scenario engine can model stuck-at cells (ignore the
/// value, return the stuck level) or drifted writes (flip a random subset
/// of lanes) without the executor carrying any fault-model code.
pub trait WriteHook<W: LaneWord> {
    /// Transforms `value` on its way into cell `addr`.
    fn transform(&mut self, addr: RamAddr, value: W) -> W;
}

/// The identity hook: every write commits unmodified.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl<W: LaneWord> WriteHook<W> for NoFaults {
    fn transform(&mut self, _addr: RamAddr, value: W) -> W {
        value
    }
}

/// The bit-parallel PLiM machine: each work cell stores one lane word,
/// executing [`LaneWord::LANES`] input patterns per instruction step.
///
/// # Examples
///
/// The same `a ∧ b̄` program as the scalar [`crate::Machine`] docs, over
/// 64 patterns at once:
///
/// ```
/// use plim::wide::{LaneWord, WideMachine};
/// use plim::{Instruction, Operand, OutputLoc, Program, RamAddr};
///
/// let mut p = Program::new(2);
/// p.push(Instruction::reset(RamAddr(0)));
/// p.push(Instruction::new(Operand::Input(0), Operand::Input(1), RamAddr(0)));
/// p.add_output("f", OutputLoc::Ram(RamAddr(0)));
///
/// let mut machine = WideMachine::<u64>::new();
/// let outputs = machine.run(&p, &[0b0110, 0b1010]).unwrap();
/// assert_eq!(outputs[0] & 0b1111, 0b0100); // a ∧ b̄ per lane
/// ```
#[derive(Debug, Clone)]
pub struct WideMachine<W> {
    cells: Vec<W>,
    write_counts: Vec<u64>,
    inputs: Vec<W>,
    cycles: u64,
}

impl<W: LaneWord> WideMachine<W> {
    /// Creates a machine with no cells; the array grows on demand when a
    /// program is loaded.
    pub fn new() -> Self {
        WideMachine {
            cells: Vec::new(),
            write_counts: Vec::new(),
            inputs: Vec::new(),
            cycles: 0,
        }
    }

    /// Loads primary-input lane words into the input region.
    pub fn load_inputs(&mut self, inputs: &[W]) {
        self.inputs = inputs.to_vec();
    }

    /// Ensures the work array has at least `count` cells (new cells are 0).
    pub fn ensure_cells(&mut self, count: usize) {
        if self.cells.len() < count {
            self.cells.resize(count, W::zero());
            self.write_counts.resize(count, 0);
        }
    }

    /// The current lane word of a work cell.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::AddressOutOfRange`] for unallocated cells.
    pub fn cell(&self, addr: RamAddr) -> Result<W, MachineError> {
        self.cells
            .get(addr.index())
            .copied()
            .ok_or(MachineError::AddressOutOfRange { addr })
    }

    /// Writes a work cell directly (standard-RAM mode, `LiM = 0`),
    /// counting [`LaneWord::LANES`] pattern writes toward endurance.
    pub fn write_cell(&mut self, addr: RamAddr, value: W) {
        self.ensure_cells(addr.index() + 1);
        self.cells[addr.index()] = value;
        self.write_counts[addr.index()] += W::LANES as u64;
    }

    /// Number of LiM cycles (wide RM3 instructions) executed so far.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-cell write counters in *pattern executions*: one wide write
    /// adds [`LaneWord::LANES`], so totals match a scalar machine running
    /// every lane separately.
    #[inline]
    pub fn write_counts(&self) -> &[u64] {
        &self.write_counts
    }

    /// Endurance statistics over all work cells (pattern-execution units).
    pub fn endurance(&self) -> EnduranceStats {
        EnduranceStats::from_counts(&self.write_counts)
    }

    fn operand_value(&self, operand: Operand) -> Result<W, MachineError> {
        match operand {
            Operand::Const(v) => Ok(W::splat(v)),
            Operand::Input(i) => self
                .inputs
                .get(i as usize)
                .copied()
                .ok_or(MachineError::InputOutOfRange { index: i }),
            Operand::Ram(addr) => self.cell(addr),
        }
    }

    /// Executes one RM3 instruction across all lanes: `Z ← ⟨A B̄ Z⟩`,
    /// routing the committed value through `hook`.
    ///
    /// # Errors
    ///
    /// Same failure modes as the scalar [`crate::Machine::step`].
    pub fn step_hooked(
        &mut self,
        instruction: Instruction,
        hook: &mut impl WriteHook<W>,
    ) -> Result<(), MachineError> {
        let a = self.operand_value(instruction.a)?;
        let b = self.operand_value(instruction.b)?;
        let z = self.cell(instruction.z)?;
        let not_b = !b;
        let result = (a & not_b) | (a & z) | (not_b & z);
        self.cells[instruction.z.index()] = hook.transform(instruction.z, result);
        self.write_counts[instruction.z.index()] += W::LANES as u64;
        self.cycles += 1;
        Ok(())
    }

    /// Executes one RM3 instruction across all lanes without faults.
    ///
    /// # Errors
    ///
    /// Same failure modes as the scalar [`crate::Machine::step`].
    pub fn step(&mut self, instruction: Instruction) -> Result<(), MachineError> {
        self.step_hooked(instruction, &mut NoFaults)
    }

    /// Runs a whole program on lane-word inputs and reads back the
    /// declared outputs, routing every committed write through `hook`.
    ///
    /// Exactly like the scalar [`crate::Machine::run`], the work array is
    /// sized to the program's RRAM count and **not** cleared between runs;
    /// write counters accumulate.
    ///
    /// # Errors
    ///
    /// Returns an error if the input count mismatches or an operand is
    /// invalid — the same [`MachineError`] values as the scalar machine.
    pub fn run_hooked(
        &mut self,
        program: &Program,
        inputs: &[W],
        hook: &mut impl WriteHook<W>,
    ) -> Result<Vec<W>, MachineError> {
        if inputs.len() != program.num_inputs() {
            return Err(MachineError::InputCountMismatch {
                expected: program.num_inputs(),
                got: inputs.len(),
            });
        }
        self.load_inputs(inputs);
        self.ensure_cells(program.num_rams() as usize);
        for &instruction in program.instructions() {
            self.step_hooked(instruction, hook)?;
        }
        program
            .outputs()
            .iter()
            .map(|(_, loc)| match *loc {
                OutputLoc::Ram(addr) => self.cell(addr),
                OutputLoc::Const(v) => Ok(W::splat(v)),
                OutputLoc::Input {
                    index,
                    complemented,
                } => self
                    .inputs
                    .get(index as usize)
                    .copied()
                    .map(|v| v ^ W::splat(complemented))
                    .ok_or(MachineError::InputOutOfRange { index }),
            })
            .collect()
    }

    /// Runs a whole program without faults.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`WideMachine::run_hooked`].
    pub fn run(&mut self, program: &Program, inputs: &[W]) -> Result<Vec<W>, MachineError> {
        self.run_hooked(program, inputs, &mut NoFaults)
    }
}

impl<W: LaneWord> Default for WideMachine<W> {
    fn default() -> Self {
        WideMachine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm3_semantics_match_scalar_on_every_lane() {
        // Drive all eight (a, b, z) combinations in eight distinct lanes
        // of one wide step and check each against the scalar formula.
        let a_word: u64 = 0b10101010;
        let b_word: u64 = 0b11001100;
        let z_word: u64 = 0b11110000;
        let mut machine = WideMachine::<u64>::new();
        machine.write_cell(RamAddr(0), z_word);
        machine.load_inputs(&[a_word, b_word]);
        machine
            .step(Instruction::new(
                Operand::Input(0),
                Operand::Input(1),
                RamAddr(0),
            ))
            .unwrap();
        let result = machine.cell(RamAddr(0)).unwrap();
        for lane in 0..8 {
            let (a, b, z) = (a_word.lane(lane), b_word.lane(lane), z_word.lane(lane));
            let expected = (a & !b) | (a & z) | (!b & z);
            assert_eq!(result.lane(lane), expected, "lane {lane}");
        }
    }

    #[test]
    fn reset_and_set_idioms_cover_all_lanes() {
        let mut machine = WideMachine::<W256>::new();
        machine.write_cell(RamAddr(0), W256([0xDEAD, 0xBEEF, 0, u64::MAX]));
        machine.step(Instruction::reset(RamAddr(0))).unwrap();
        assert_eq!(machine.cell(RamAddr(0)).unwrap(), W256::zero());
        machine.step(Instruction::set(RamAddr(0))).unwrap();
        assert_eq!(machine.cell(RamAddr(0)).unwrap(), W256::ones());
    }

    #[test]
    fn run_checks_input_count_like_scalar() {
        let p = Program::new(3);
        let mut machine = WideMachine::<u64>::new();
        let err = machine.run(&p, &[1]).unwrap_err();
        assert_eq!(
            err,
            MachineError::InputCountMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn step_rejects_unallocated_cell_and_missing_input() {
        let mut machine = WideMachine::<u64>::new();
        let err = machine.step(Instruction::reset(RamAddr(5))).unwrap_err();
        assert_eq!(err, MachineError::AddressOutOfRange { addr: RamAddr(5) });
        machine.ensure_cells(1);
        let err = machine
            .step(Instruction::new(
                Operand::Input(2),
                Operand::Const(false),
                RamAddr(0),
            ))
            .unwrap_err();
        assert_eq!(err, MachineError::InputOutOfRange { index: 2 });
    }

    #[test]
    fn write_counts_are_lane_adjusted() {
        let mut machine = WideMachine::<u64>::new();
        machine.ensure_cells(2);
        for _ in 0..5 {
            machine.step(Instruction::reset(RamAddr(0))).unwrap();
        }
        machine.step(Instruction::reset(RamAddr(1))).unwrap();
        assert_eq!(machine.write_counts()[0], 5 * 64);
        assert_eq!(machine.write_counts()[1], 64);
        assert_eq!(machine.cycles(), 6);
        let mut wide256 = WideMachine::<W256>::new();
        wide256.ensure_cells(1);
        wide256.step(Instruction::reset(RamAddr(0))).unwrap();
        assert_eq!(wide256.write_counts()[0], 256);
    }

    #[test]
    fn output_locations_resolve_per_lane() {
        let mut p = Program::new(2);
        p.push(Instruction::reset(RamAddr(0)));
        p.add_output("r", OutputLoc::Ram(RamAddr(0)));
        p.add_output("c", OutputLoc::Const(true));
        p.add_output(
            "i",
            OutputLoc::Input {
                index: 1,
                complemented: true,
            },
        );
        let mut machine = WideMachine::<u64>::new();
        let outputs = machine.run(&p, &[0, 0b1010]).unwrap();
        assert_eq!(outputs, vec![0, u64::MAX, !0b1010]);
    }

    #[test]
    fn stuck_at_hook_overrides_writes() {
        struct StuckHigh(RamAddr);
        impl WriteHook<u64> for StuckHigh {
            fn transform(&mut self, addr: RamAddr, value: u64) -> u64 {
                if addr == self.0 {
                    u64::MAX
                } else {
                    value
                }
            }
        }
        let mut p = Program::new(0);
        p.push(Instruction::reset(RamAddr(0)));
        p.push(Instruction::reset(RamAddr(1)));
        p.add_output("f", OutputLoc::Ram(RamAddr(0)));
        p.add_output("g", OutputLoc::Ram(RamAddr(1)));
        let mut machine = WideMachine::<u64>::new();
        let outputs = machine
            .run_hooked(&p, &[], &mut StuckHigh(RamAddr(0)))
            .unwrap();
        assert_eq!(outputs, vec![u64::MAX, 0]);
    }

    #[test]
    fn lane_word_blocks_round_trip() {
        let w = W256::from_blocks(|i| i as u64 + 1);
        assert_eq!(w, W256([1, 2, 3, 4]));
        assert_eq!(w.block(2), 3);
        assert!(w.lane(128)); // block 2, bit 0 — value 3 has bit 0 set
        assert!(!w.lane(1));
        assert_eq!(w.count_ones(), 1 + 1 + 2 + 1);
        assert_eq!(<u64 as LaneWord>::from_blocks(|_| 42), 42);
        assert_eq!(7u64.block(0), 7);
        assert_eq!(W256::splat(true), W256::ones());
        assert_eq!(W256::splat(false), W256::zero());
    }

    #[test]
    fn cells_retain_values_across_runs() {
        // Matching the scalar machine: no clearing between runs.
        let mut p = Program::new(0);
        p.push(Instruction::set(RamAddr(0)));
        p.add_output("f", OutputLoc::Ram(RamAddr(0)));
        let mut machine = WideMachine::<u64>::new();
        machine.run(&p, &[]).unwrap();
        let mut probe = Program::new(0);
        probe.add_output("f", OutputLoc::Ram(RamAddr(0)));
        // The cell written by the previous run is still set.
        assert_eq!(machine.run(&probe, &[]).unwrap(), vec![u64::MAX]);
    }
}
