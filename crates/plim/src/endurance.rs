//! RRAM endurance accounting.
//!
//! Resistive memory cells tolerate a bounded number of write cycles, so a
//! logic-in-memory program that hammers a few cells wears the array out
//! prematurely. The paper addresses this with a FIFO RRAM allocation policy
//! that spreads writes across cells; this module provides the statistics to
//! quantify that effect.

use std::fmt;

/// Aggregate write statistics over a set of RRAM cells.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnduranceStats {
    /// Number of cells considered.
    pub cells: usize,
    /// Total writes across all cells.
    pub total_writes: u64,
    /// Maximum writes to a single cell (the wear bottleneck).
    pub max_writes: u64,
    /// Minimum writes to a single cell.
    pub min_writes: u64,
    /// Mean writes per cell.
    pub mean_writes: f64,
    /// Population standard deviation of per-cell writes.
    pub stddev_writes: f64,
}

impl EnduranceStats {
    /// Computes statistics from per-cell write counters.
    ///
    /// # Examples
    ///
    /// ```
    /// use plim::endurance::EnduranceStats;
    ///
    /// let stats = EnduranceStats::from_counts(&[4, 4, 4, 4]);
    /// assert_eq!(stats.max_writes, 4);
    /// assert_eq!(stats.stddev_writes, 0.0);
    /// assert_eq!(stats.imbalance(), 1.0);
    /// ```
    pub fn from_counts(counts: &[u64]) -> Self {
        if counts.is_empty() {
            return EnduranceStats::default();
        }
        let cells = counts.len();
        let total: u64 = counts.iter().sum();
        let max = *counts.iter().max().expect("nonempty");
        let min = *counts.iter().min().expect("nonempty");
        let mean = total as f64 / cells as f64;
        let variance = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / cells as f64;
        EnduranceStats {
            cells,
            total_writes: total,
            max_writes: max,
            min_writes: min,
            mean_writes: mean,
            stddev_writes: variance.sqrt(),
        }
    }

    /// Wear imbalance: `max / mean` (1.0 is perfectly balanced; large values
    /// mean a few cells absorb most writes). Returns 0 when no writes
    /// occurred.
    pub fn imbalance(&self) -> f64 {
        if self.mean_writes == 0.0 {
            0.0
        } else {
            self.max_writes as f64 / self.mean_writes
        }
    }

    /// Estimated array lifetime in *program executions*, given a per-cell
    /// endurance budget: the array fails when its most-written cell reaches
    /// `cell_endurance` writes. Returns `None` when no cell is written.
    ///
    /// # Examples
    ///
    /// ```
    /// use plim::endurance::EnduranceStats;
    ///
    /// let stats = EnduranceStats::from_counts(&[10, 2]);
    /// assert_eq!(stats.lifetime_executions(1_000_000), Some(100_000));
    /// ```
    pub fn lifetime_executions(&self, cell_endurance: u64) -> Option<u64> {
        cell_endurance.checked_div(self.max_writes)
    }
}

impl fmt::Display for EnduranceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cells={} writes={} max={} min={} mean={:.2} stddev={:.2}",
            self.cells,
            self.total_writes,
            self.max_writes,
            self.min_writes,
            self.mean_writes,
            self.stddev_writes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_counts_are_all_zero() {
        let stats = EnduranceStats::from_counts(&[]);
        assert_eq!(stats.cells, 0);
        assert_eq!(stats.total_writes, 0);
        assert_eq!(stats.imbalance(), 0.0);
        assert_eq!(stats.lifetime_executions(1000), None);
    }

    #[test]
    fn uniform_counts_have_zero_stddev() {
        let stats = EnduranceStats::from_counts(&[7, 7, 7]);
        assert_eq!(stats.total_writes, 21);
        assert_eq!(stats.max_writes, 7);
        assert_eq!(stats.min_writes, 7);
        assert!((stats.mean_writes - 7.0).abs() < 1e-12);
        assert_eq!(stats.stddev_writes, 0.0);
    }

    #[test]
    fn skewed_counts_show_imbalance() {
        let stats = EnduranceStats::from_counts(&[100, 1, 1, 1, 1]);
        assert!(stats.imbalance() > 4.0);
        assert!(stats.stddev_writes > 30.0);
        assert_eq!(stats.min_writes, 1);
    }

    #[test]
    fn lifetime_scales_with_hotspot() {
        let balanced = EnduranceStats::from_counts(&[5, 5]);
        let skewed = EnduranceStats::from_counts(&[10, 0]);
        assert_eq!(balanced.total_writes, skewed.total_writes);
        assert!(balanced.lifetime_executions(1000) > skewed.lifetime_executions(1000));
    }

    #[test]
    fn display_is_informative() {
        let text = EnduranceStats::from_counts(&[1, 3]).to_string();
        assert!(text.contains("cells=2"));
        assert!(text.contains("max=3"));
    }
}
