//! Machine execution errors.

use std::fmt;

use crate::isa::RamAddr;

/// Error raised while executing a PLiM program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// An instruction referenced a work cell beyond the allocated array.
    AddressOutOfRange {
        /// The offending address.
        addr: RamAddr,
    },
    /// An instruction referenced a primary input that was not loaded.
    InputOutOfRange {
        /// The offending input index.
        index: u32,
    },
    /// `Machine::run` received the wrong number of input values.
    InputCountMismatch {
        /// Inputs declared by the program.
        expected: usize,
        /// Inputs supplied by the caller.
        got: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::AddressOutOfRange { addr } => {
                write!(f, "work cell {addr} is not allocated")
            }
            MachineError::InputOutOfRange { index } => {
                write!(f, "primary input i{} is not loaded", index + 1)
            }
            MachineError::InputCountMismatch { expected, got } => {
                write!(f, "program expects {expected} inputs, got {got}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e1 = MachineError::AddressOutOfRange { addr: RamAddr(3) };
        assert_eq!(e1.to_string(), "work cell @X4 is not allocated");
        let e2 = MachineError::InputOutOfRange { index: 0 };
        assert_eq!(e2.to_string(), "primary input i1 is not loaded");
        let e3 = MachineError::InputCountMismatch {
            expected: 2,
            got: 5,
        };
        assert_eq!(e3.to_string(), "program expects 2 inputs, got 5");
    }
}
