//! Functional simulator of the PLiM architecture.
//!
//! The PLiM controller wraps a standard RRAM array (see Fig. 2 of the
//! paper): when the `LiM` flag is off, the array behaves as an ordinary
//! memory; when it is on, the controller fetches RM3 instructions and
//! performs the majority write `Z ← ⟨A B̄ Z⟩` one instruction per cycle.
//!
//! The simulator models exactly that: a bit-addressable work array, a
//! read-only input region, a program counter, and per-cell write counters
//! (RRAM endurance is a first-class cost of in-memory computing).

use crate::endurance::EnduranceStats;
use crate::error::MachineError;
use crate::isa::{Instruction, Operand, OutputLoc, Program, RamAddr};

/// The PLiM machine: work RRAM cells, input region and execution state.
///
/// # Examples
///
/// Hand-assembling a two-instruction program that computes `a ∧ b`:
/// reset `X1` to 0, then `RM3(a, b̄ intrinsically… )` — concretely
/// `(a, !b, 0)` is expressed as `RM3(A = a, B = b, Z = 0)` since the RM3
/// write inverts `B`: `⟨a b̄ 0⟩ = a ∧ b̄`. To get `a ∧ b` we pass the
/// already-complemented input:
///
/// ```
/// use plim::{Instruction, Machine, Operand, Program, RamAddr, OutputLoc};
///
/// let mut p = Program::new(2);
/// p.push(Instruction::reset(RamAddr(0)));                // X1 ← 0
/// // X1 ← ⟨i1 ī2 0⟩ = i1 ∧ ī2
/// p.push(Instruction::new(Operand::Input(0), Operand::Input(1), RamAddr(0)));
/// p.add_output("f", OutputLoc::Ram(RamAddr(0)));
///
/// let mut machine = Machine::new();
/// assert_eq!(machine.run(&p, &[true, false]).unwrap(), vec![true]);
/// assert_eq!(machine.run(&p, &[true, true]).unwrap(), vec![false]);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    cells: Vec<bool>,
    write_counts: Vec<u64>,
    inputs: Vec<bool>,
    cycles: u64,
}

impl Machine {
    /// Creates a machine with no cells; the array grows on demand when a
    /// program is loaded.
    pub fn new() -> Self {
        Machine {
            cells: Vec::new(),
            write_counts: Vec::new(),
            inputs: Vec::new(),
            cycles: 0,
        }
    }

    /// Loads primary-input values into the input region.
    pub fn load_inputs(&mut self, inputs: &[bool]) {
        self.inputs = inputs.to_vec();
    }

    /// Ensures the work array has at least `count` cells (new cells are 0).
    pub fn ensure_cells(&mut self, count: usize) {
        if self.cells.len() < count {
            self.cells.resize(count, false);
            self.write_counts.resize(count, 0);
        }
    }

    /// The current value of a work cell.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::AddressOutOfRange`] for unallocated cells.
    pub fn cell(&self, addr: RamAddr) -> Result<bool, MachineError> {
        self.cells
            .get(addr.index())
            .copied()
            .ok_or(MachineError::AddressOutOfRange { addr })
    }

    /// Writes a work cell directly (standard-RAM mode, `LiM = 0`).
    ///
    /// Counts toward endurance like any other write.
    pub fn write_cell(&mut self, addr: RamAddr, value: bool) {
        self.ensure_cells(addr.index() + 1);
        self.cells[addr.index()] = value;
        self.write_counts[addr.index()] += 1;
    }

    /// Number of LiM cycles (RM3 instructions) executed so far.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Per-cell write counters accumulated so far.
    #[inline]
    pub fn write_counts(&self) -> &[u64] {
        &self.write_counts
    }

    /// Endurance statistics over all work cells.
    pub fn endurance(&self) -> EnduranceStats {
        EnduranceStats::from_counts(&self.write_counts)
    }

    fn operand_value(&self, operand: Operand) -> Result<bool, MachineError> {
        match operand {
            Operand::Const(v) => Ok(v),
            Operand::Input(i) => self
                .inputs
                .get(i as usize)
                .copied()
                .ok_or(MachineError::InputOutOfRange { index: i }),
            Operand::Ram(addr) => self.cell(addr),
        }
    }

    /// Executes a single RM3 instruction: `Z ← ⟨A B̄ Z⟩`.
    ///
    /// # Errors
    ///
    /// Returns an error if an operand references a missing input or an
    /// unallocated cell.
    pub fn step(&mut self, instruction: Instruction) -> Result<(), MachineError> {
        let a = self.operand_value(instruction.a)?;
        let b = self.operand_value(instruction.b)?;
        let z = self.cell(instruction.z)?;
        let not_b = !b;
        let result = (a & not_b) | (a & z) | (not_b & z);
        self.cells[instruction.z.index()] = result;
        self.write_counts[instruction.z.index()] += 1;
        self.cycles += 1;
        Ok(())
    }

    /// Executes a whole program on the given inputs and reads back the
    /// declared outputs.
    ///
    /// The work array is sized to the program's RRAM count and **not**
    /// cleared between runs (matching real hardware, where cells retain
    /// their previous values); compiled programs must initialize every cell
    /// before use. Write counters accumulate across runs, which is exactly
    /// what an endurance analysis over a workload wants.
    ///
    /// # Errors
    ///
    /// Returns an error if the input count mismatches or an operand is
    /// invalid.
    pub fn run(&mut self, program: &Program, inputs: &[bool]) -> Result<Vec<bool>, MachineError> {
        if inputs.len() != program.num_inputs() {
            return Err(MachineError::InputCountMismatch {
                expected: program.num_inputs(),
                got: inputs.len(),
            });
        }
        self.load_inputs(inputs);
        self.ensure_cells(program.num_rams() as usize);
        for &instruction in program.instructions() {
            self.step(instruction)?;
        }
        program
            .outputs()
            .iter()
            .map(|(_, loc)| match *loc {
                OutputLoc::Ram(addr) => self.cell(addr),
                OutputLoc::Const(v) => Ok(v),
                OutputLoc::Input {
                    index,
                    complemented,
                } => self
                    .inputs
                    .get(index as usize)
                    .copied()
                    .map(|v| v ^ complemented)
                    .ok_or(MachineError::InputOutOfRange { index }),
            })
            .collect()
    }

    /// Runs the program and additionally returns a cycle-by-cycle execution
    /// trace: the value written by each instruction.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Machine::run`].
    pub fn run_traced(
        &mut self,
        program: &Program,
        inputs: &[bool],
    ) -> Result<(Vec<bool>, Vec<bool>), MachineError> {
        if inputs.len() != program.num_inputs() {
            return Err(MachineError::InputCountMismatch {
                expected: program.num_inputs(),
                got: inputs.len(),
            });
        }
        self.load_inputs(inputs);
        self.ensure_cells(program.num_rams() as usize);
        let mut trace = Vec::with_capacity(program.len());
        for &instruction in program.instructions() {
            self.step(instruction)?;
            trace.push(self.cells[instruction.z.index()]);
        }
        let outputs = program
            .outputs()
            .iter()
            .map(|(_, loc)| match *loc {
                OutputLoc::Ram(addr) => self.cell(addr),
                OutputLoc::Const(v) => Ok(v),
                OutputLoc::Input {
                    index,
                    complemented,
                } => self
                    .inputs
                    .get(index as usize)
                    .copied()
                    .map(|v| v ^ complemented)
                    .ok_or(MachineError::InputOutOfRange { index }),
            })
            .collect::<Result<Vec<bool>, MachineError>>()?;
        Ok((outputs, trace))
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rm3_semantics_exhaustive() {
        // Z ← ⟨A B̄ Z⟩ for all eight operand combinations.
        for a in [false, true] {
            for b in [false, true] {
                for z in [false, true] {
                    let mut machine = Machine::new();
                    machine.ensure_cells(1);
                    machine.write_cell(RamAddr(0), z);
                    machine
                        .step(Instruction::new(
                            Operand::Const(a),
                            Operand::Const(b),
                            RamAddr(0),
                        ))
                        .unwrap();
                    let expected = (a & !b) | (a & z) | (!b & z);
                    assert_eq!(machine.cell(RamAddr(0)).unwrap(), expected);
                }
            }
        }
    }

    #[test]
    fn reset_and_set_idioms() {
        let mut machine = Machine::new();
        machine.ensure_cells(1);
        machine.write_cell(RamAddr(0), true);
        machine.step(Instruction::reset(RamAddr(0))).unwrap();
        assert!(!machine.cell(RamAddr(0)).unwrap());
        machine.step(Instruction::set(RamAddr(0))).unwrap();
        assert!(machine.cell(RamAddr(0)).unwrap());
    }

    #[test]
    fn paper_complement_copy_idiom() {
        // X ← ī: reset then (1, i, @X): ⟨1 ī 0⟩ = ī.
        for input in [false, true] {
            let mut machine = Machine::new();
            machine.load_inputs(&[input]);
            machine.ensure_cells(1);
            machine.step(Instruction::reset(RamAddr(0))).unwrap();
            machine
                .step(Instruction::new(
                    Operand::Const(true),
                    Operand::Input(0),
                    RamAddr(0),
                ))
                .unwrap();
            assert_eq!(machine.cell(RamAddr(0)).unwrap(), !input);
        }
    }

    #[test]
    fn paper_copy_idiom() {
        // X ← v: set X to 1 then (v, 1, @X): ⟨v 0 1⟩ = v.
        for input in [false, true] {
            let mut machine = Machine::new();
            machine.load_inputs(&[input]);
            machine.ensure_cells(1);
            machine.step(Instruction::set(RamAddr(0))).unwrap();
            machine
                .step(Instruction::new(
                    Operand::Input(0),
                    Operand::Const(true),
                    RamAddr(0),
                ))
                .unwrap();
            assert_eq!(machine.cell(RamAddr(0)).unwrap(), input);
        }
    }

    #[test]
    fn run_checks_input_count() {
        let p = Program::new(3);
        let mut machine = Machine::new();
        let err = machine.run(&p, &[true]).unwrap_err();
        assert!(matches!(
            err,
            MachineError::InputCountMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn step_rejects_unallocated_cell() {
        let mut machine = Machine::new();
        let err = machine.step(Instruction::reset(RamAddr(5))).unwrap_err();
        assert!(matches!(err, MachineError::AddressOutOfRange { .. }));
    }

    #[test]
    fn step_rejects_missing_input() {
        let mut machine = Machine::new();
        machine.ensure_cells(1);
        let err = machine
            .step(Instruction::new(
                Operand::Input(2),
                Operand::Const(false),
                RamAddr(0),
            ))
            .unwrap_err();
        assert!(matches!(err, MachineError::InputOutOfRange { index: 2 }));
    }

    #[test]
    fn write_counts_accumulate() {
        let mut machine = Machine::new();
        machine.ensure_cells(2);
        for _ in 0..5 {
            machine.step(Instruction::reset(RamAddr(0))).unwrap();
        }
        machine.step(Instruction::reset(RamAddr(1))).unwrap();
        assert_eq!(machine.write_counts()[0], 5);
        assert_eq!(machine.write_counts()[1], 1);
        assert_eq!(machine.cycles(), 6);
        let stats = machine.endurance();
        assert_eq!(stats.max_writes, 5);
    }

    #[test]
    fn traced_run_records_written_values() {
        let mut p = Program::new(1);
        p.push(Instruction::reset(RamAddr(0)));
        p.push(Instruction::new(
            Operand::Const(true),
            Operand::Input(0),
            RamAddr(0),
        ));
        p.add_output("f", OutputLoc::Ram(RamAddr(0)));
        let mut machine = Machine::new();
        let (outputs, trace) = machine.run_traced(&p, &[false]).unwrap();
        assert_eq!(outputs, vec![true]); // ī with i = 0
        assert_eq!(trace, vec![false, true]);
    }

    #[test]
    fn output_locations_resolve() {
        let mut p = Program::new(2);
        p.push(Instruction::reset(RamAddr(0)));
        p.add_output("r", OutputLoc::Ram(RamAddr(0)));
        p.add_output("c", OutputLoc::Const(true));
        p.add_output(
            "i",
            OutputLoc::Input {
                index: 1,
                complemented: true,
            },
        );
        let mut machine = Machine::new();
        let outputs = machine.run(&p, &[false, false]).unwrap();
        assert_eq!(outputs, vec![false, true, true]);
    }
}
