//! PLiM assembly: a textual format for RM3 programs.
//!
//! The format extends the paper's listing notation with the interface
//! directives a loader needs:
//!
//! ```text
//! .inputs 3
//! 01: 0, 1, @X1
//! 02: i3, 0, @X1
//! .output f = @X1
//! .output g = !i2
//! .output one = 1
//! ```
//!
//! Instruction lines are `A, B, @Xk` (the leading `NN:` counter is
//! optional and ignored); operands are `0`/`1`, `iK` (primary input K,
//! 1-based as in the paper) or `@Xk` (work cell k, 1-based). Output
//! directives bind a name to a cell, an input (optionally `!`-complemented)
//! or a constant.

use std::fmt;

use crate::isa::{Instruction, Operand, OutputLoc, Program, RamAddr};

/// Error produced while parsing PLiM assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

/// Serializes a program as PLiM assembly (parseable by [`parse_asm`]).
pub fn write_asm(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".inputs {}", program.num_inputs());
    let width = program.len().to_string().len().max(2);
    for (index, instruction) in program.instructions().iter().enumerate() {
        let _ = writeln!(out, "{:0width$}: {}", index + 1, instruction);
    }
    for (name, loc) in program.outputs() {
        let target = match loc {
            OutputLoc::Ram(addr) => format!("{addr}"),
            OutputLoc::Const(v) => format!("{}", *v as u8),
            OutputLoc::Input {
                index,
                complemented,
            } => format!("{}i{}", if *complemented { "!" } else { "" }, index + 1),
        };
        let _ = writeln!(out, ".output {name} = {target}");
    }
    out
}

fn parse_operand(token: &str, line: usize) -> Result<Operand, ParseAsmError> {
    let err = |message: String| ParseAsmError { line, message };
    match token {
        "0" => Ok(Operand::Const(false)),
        "1" => Ok(Operand::Const(true)),
        _ => {
            if let Some(rest) = token.strip_prefix("@X") {
                let k: u32 = rest
                    .parse()
                    .map_err(|_| err(format!("bad cell `{token}`")))?;
                if k == 0 {
                    return Err(err("cell numbers are 1-based".to_string()));
                }
                Ok(Operand::Ram(RamAddr(k - 1)))
            } else if let Some(rest) = token.strip_prefix('i') {
                let k: u32 = rest
                    .parse()
                    .map_err(|_| err(format!("bad input `{token}`")))?;
                if k == 0 {
                    return Err(err("input numbers are 1-based".to_string()));
                }
                Ok(Operand::Input(k - 1))
            } else {
                Err(err(format!("unrecognized operand `{token}`")))
            }
        }
    }
}

/// Parses PLiM assembly into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseAsmError`] on malformed directives, operands, or
/// destinations.
pub fn parse_asm(text: &str) -> Result<Program, ParseAsmError> {
    let err = |line: usize, message: &str| ParseAsmError {
        line,
        message: message.to_string(),
    };
    let mut program = Program::new(0);
    let mut num_inputs: Option<usize> = None;

    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix(".inputs") {
            let n = rest
                .trim()
                .parse()
                .map_err(|_| err(line_no, "bad .inputs count"))?;
            num_inputs = Some(n);
            let outputs: Vec<(String, OutputLoc)> = program.outputs().to_vec();
            let mut fresh = Program::new(n);
            for &i in program.instructions() {
                fresh.push(i);
            }
            for (name, loc) in outputs {
                fresh.add_output(name, loc);
            }
            program = fresh;
        } else if let Some(rest) = line.strip_prefix(".output") {
            let mut parts = rest.splitn(2, '=');
            let name = parts
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| err(line_no, "missing output name"))?;
            let target = parts
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| err(line_no, "missing `=` in .output"))?;
            let (complemented, target) = match target.strip_prefix('!') {
                Some(rest) => (true, rest),
                None => (false, target),
            };
            let loc = match parse_operand(target, line_no)? {
                Operand::Const(v) => OutputLoc::Const(v ^ complemented),
                Operand::Input(i) => OutputLoc::Input {
                    index: i,
                    complemented,
                },
                Operand::Ram(addr) => {
                    if complemented {
                        return Err(err(line_no, "cell outputs cannot be complemented"));
                    }
                    OutputLoc::Ram(addr)
                }
            };
            program.add_output(name, loc);
        } else {
            // Instruction line, with an optional `NN:` prefix.
            let body = match line.split_once(':') {
                Some((counter, rest)) if counter.trim().parse::<usize>().is_ok() => rest,
                _ => line,
            };
            let tokens: Vec<&str> = body.split(',').map(str::trim).collect();
            if tokens.len() != 3 {
                return Err(err(line_no, "instruction needs `A, B, @Xk`"));
            }
            let a = parse_operand(tokens[0], line_no)?;
            let b = parse_operand(tokens[1], line_no)?;
            let z = match parse_operand(tokens[2], line_no)? {
                Operand::Ram(addr) => addr,
                _ => return Err(err(line_no, "destination must be a cell `@Xk`")),
            };
            program.push(Instruction::new(a, b, z));
        }
    }

    if num_inputs.is_none() {
        // Infer from the largest referenced input.
        let max_input = program
            .instructions()
            .iter()
            .flat_map(|i| [i.a, i.b])
            .filter_map(|o| match o {
                Operand::Input(i) => Some(i as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let outputs: Vec<(String, OutputLoc)> = program.outputs().to_vec();
        let mut fresh = Program::new(max_input);
        for &i in program.instructions() {
            fresh.push(i);
        }
        for (name, loc) in outputs {
            fresh.add_output(name, loc);
        }
        program = fresh;
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut p = Program::new(3);
        p.push(Instruction::reset(RamAddr(0)));
        p.push(Instruction::new(
            Operand::Input(2),
            Operand::Const(false),
            RamAddr(0),
        ));
        p.push(Instruction::new(
            Operand::Ram(RamAddr(0)),
            Operand::Input(0),
            RamAddr(1),
        ));
        p.add_output("f", OutputLoc::Ram(RamAddr(1)));
        p.add_output(
            "g",
            OutputLoc::Input {
                index: 1,
                complemented: true,
            },
        );
        p.add_output("k", OutputLoc::Const(true));

        let text = write_asm(&p);
        let parsed = parse_asm(&text).unwrap();
        assert_eq!(parsed.num_inputs(), 3);
        assert_eq!(parsed.instructions(), p.instructions());
        assert_eq!(parsed.outputs(), p.outputs());
    }

    #[test]
    fn executes_identically_after_roundtrip() {
        let mut p = Program::new(2);
        p.push(Instruction::reset(RamAddr(0)));
        p.push(Instruction::new(
            Operand::Input(0),
            Operand::Input(1),
            RamAddr(0),
        ));
        p.add_output("f", OutputLoc::Ram(RamAddr(0)));
        let parsed = parse_asm(&write_asm(&p)).unwrap();
        let mut m1 = Machine::new();
        let mut m2 = Machine::new();
        for pattern in 0..4 {
            let inputs = [pattern & 1 != 0, pattern & 2 != 0];
            assert_eq!(
                m1.run(&p, &inputs).unwrap(),
                m2.run(&parsed, &inputs).unwrap()
            );
        }
    }

    #[test]
    fn parses_paper_listing_style() {
        let text = "\
.inputs 3
01: 0, 1, @X1
02: i3, 0, @X1
03: i1, i2, @X1
.output f = @X1
";
        let p = parse_asm(text).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_rams(), 1);
        assert_eq!(p.num_inputs(), 3);
    }

    #[test]
    fn counter_prefix_is_optional_and_comments_ignored() {
        let text = "0, 1, @X1  # reset\ni1, 0, @X1\n.output f = @X1\n";
        let p = parse_asm(text).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_inputs(), 1, "inferred from i1");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_asm("0, 1\n").is_err());
        assert!(parse_asm("0, 1, i2\n").is_err());
        assert!(parse_asm("0, 1, @X0\n").is_err());
        assert!(parse_asm("zz, 1, @X1\n").is_err());
        assert!(parse_asm(".output f\n").is_err());
        assert!(parse_asm(".output f = !@X1\n").is_err());
        assert!(parse_asm(".inputs many\n").is_err());
        assert!(parse_asm("i0, 1, @X1\n").is_err());
    }

    #[test]
    fn complemented_constant_output_folds() {
        let p = parse_asm(".output f = !0\n").unwrap();
        assert_eq!(p.outputs()[0].1, OutputLoc::Const(true));
    }
}
