//! A wakeable multi-producer completion queue.
//!
//! The reactor-based `plimd` server runs its event loop on one thread
//! while compile jobs finish on [`pool::WorkerPool`](crate::pool) workers.
//! Workers cannot write to connection sockets themselves (the reactor owns
//! them), so they push finished results here and the queue *notifies* the
//! consumer through a pluggable callback — in the daemon, a write to a
//! self-pipe registered with the poller, which wakes `epoll_wait`/`kevent`
//! out of its sleep.
//!
//! The queue itself is deliberately tiny: a mutex-guarded `VecDeque` plus
//! the notifier. Pushes never block on the consumer and the consumer
//! drains in one lock acquisition, so the hot path is two short critical
//! sections per completion. The notifier is invoked *after* the item is
//! visible in the queue, which gives the consumer the usual self-pipe
//! contract: drain the wake signal first, then drain the queue, and no
//! completion can be lost (a notification with an already-drained queue is
//! a harmless spurious wake).
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use plim_parallel::queue::CompletionQueue;
//!
//! let queue: Arc<CompletionQueue<u32>> = Arc::new(CompletionQueue::new());
//! let wakes = Arc::new(AtomicUsize::new(0));
//! let counter = Arc::clone(&wakes);
//! queue.set_notify(move || {
//!     counter.fetch_add(1, Ordering::Relaxed);
//! });
//! queue.push(7);
//! assert_eq!(queue.drain(), vec![7]);
//! assert_eq!(wakes.load(Ordering::Relaxed), 1);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

type Notifier = Box<dyn Fn() + Send + Sync + 'static>;

/// A thread-safe FIFO of finished work items with a wakeup callback.
///
/// See the [module docs](self) for the notification contract.
pub struct CompletionQueue<T> {
    items: Mutex<VecDeque<T>>,
    notify: Mutex<Option<Notifier>>,
}

impl<T> Default for CompletionQueue<T> {
    fn default() -> Self {
        CompletionQueue::new()
    }
}

impl<T> std::fmt::Debug for CompletionQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionQueue")
            .field("len", &self.len())
            .finish()
    }
}

impl<T> CompletionQueue<T> {
    /// Creates an empty queue with no notifier installed.
    pub fn new() -> Self {
        CompletionQueue {
            items: Mutex::new(VecDeque::new()),
            notify: Mutex::new(None),
        }
    }

    /// Installs the wakeup callback invoked after every [`push`](Self::push).
    ///
    /// The callback must be cheap and must never block (in the daemon it
    /// is a 1-byte pipe write). Replacing an existing notifier is allowed;
    /// items pushed before a notifier exists are simply not signalled and
    /// are picked up by the consumer's next drain.
    pub fn set_notify(&self, notify: impl Fn() + Send + Sync + 'static) {
        *self.notify.lock().expect("queue notifier poisoned") = Some(Box::new(notify));
    }

    /// Appends one item and signals the consumer.
    pub fn push(&self, item: T) {
        {
            let mut items = self.items.lock().expect("queue lock poisoned");
            items.push_back(item);
        }
        // Signal strictly after the item is visible; see the module docs.
        let notify = self.notify.lock().expect("queue notifier poisoned");
        if let Some(notify) = notify.as_ref() {
            notify();
        }
    }

    /// Removes and returns every queued item, oldest first.
    pub fn drain(&self) -> Vec<T> {
        let mut items = self.items.lock().expect("queue lock poisoned");
        items.drain(..).collect()
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.items.lock().expect("queue lock poisoned").len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn drains_in_push_order() {
        let queue = CompletionQueue::new();
        for n in 0..10 {
            queue.push(n);
        }
        assert_eq!(queue.drain(), (0..10).collect::<Vec<_>>());
        assert!(queue.is_empty());
    }

    #[test]
    fn notifies_once_per_push_after_the_item_is_visible() {
        let queue: Arc<CompletionQueue<u32>> = Arc::new(CompletionQueue::new());
        let observed = Arc::new(AtomicUsize::new(0));
        let inner_queue = Arc::clone(&queue);
        let inner_observed = Arc::clone(&observed);
        queue.set_notify(move || {
            // The pushed item must already be drainable from inside the
            // notifier — that is the whole self-pipe contract.
            inner_observed.fetch_max(inner_queue.len(), Ordering::Relaxed);
        });
        queue.push(1);
        assert_eq!(observed.load(Ordering::Relaxed), 1);
        assert_eq!(queue.drain(), vec![1]);
    }

    #[test]
    fn pushes_before_a_notifier_exists_are_kept() {
        let queue = CompletionQueue::new();
        queue.push("early");
        queue.set_notify(|| {});
        queue.push("late");
        assert_eq!(queue.drain(), vec!["early", "late"]);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let queue: Arc<CompletionQueue<usize>> = Arc::new(CompletionQueue::new());
        let wakes = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&wakes);
        queue.set_notify(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let mut producers = Vec::new();
        for t in 0..8 {
            let queue = Arc::clone(&queue);
            producers.push(std::thread::spawn(move || {
                for n in 0..100 {
                    queue.push(t * 100 + n);
                }
            }));
        }
        let mut seen = Vec::new();
        while seen.len() < 800 {
            seen.extend(queue.drain());
        }
        for producer in producers {
            producer.join().unwrap();
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..800).collect::<Vec<_>>());
        assert_eq!(wakes.load(Ordering::Relaxed), 800);
    }
}
