//! A reusable, shard-addressed worker pool with graceful shutdown.
//!
//! [`par_map`](crate::par_map) covers one-shot fan-outs; a long-running
//! daemon needs the opposite shape — threads that outlive any single
//! batch, accept work continuously, and drain cleanly on shutdown.
//! [`WorkerPool`] provides exactly that, with one twist tailored to the
//! compile service: every job is submitted to a *shard*, each shard is
//! pinned to one worker thread, and a worker drains its own queue in FIFO
//! order. Jobs that share a shard therefore never run concurrently —
//! which is how `plimd` serializes requests that hash to the same cache
//! shard, so a burst of identical requests compiles once and the rest hit
//! the cache.
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use plim_parallel::pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let counter = Arc::new(AtomicUsize::new(0));
//! for shard in 0..16 {
//!     let counter = Arc::clone(&counter);
//!     pool.submit(shard, move || {
//!         counter.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.shutdown(); // waits for every queued job
//! assert_eq!(counter.load(Ordering::Relaxed), 16);
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One worker's mailbox.
#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Mailbox {
    queue: Mutex<Queue>,
    available: Condvar,
}

/// A fixed-size pool of named worker threads, each draining its own FIFO
/// queue. See the [module docs](self) for the sharding contract.
///
/// Dropping the pool shuts it down gracefully (equivalent to calling
/// [`WorkerPool::shutdown`]): queues close, already-queued jobs still run,
/// and the worker threads are joined.
pub struct WorkerPool {
    mailboxes: Vec<Arc<Mailbox>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let count = workers.max(1);
        let mailboxes: Vec<Arc<Mailbox>> = (0..count)
            .map(|_| {
                Arc::new(Mailbox {
                    queue: Mutex::new(Queue::default()),
                    available: Condvar::new(),
                })
            })
            .collect();
        let workers = mailboxes
            .iter()
            .enumerate()
            .map(|(index, mailbox)| {
                let mailbox = Arc::clone(mailbox);
                std::thread::Builder::new()
                    .name(format!("plim-worker-{index}"))
                    .spawn(move || worker_loop(&mailbox))
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool { mailboxes, workers }
    }

    /// Number of worker threads (= number of shards).
    pub fn workers(&self) -> usize {
        self.mailboxes.len()
    }

    /// Queues `job` on the worker owning `shard % workers`. Returns `false`
    /// (dropping the job) when the pool is already shutting down.
    pub fn submit(&self, shard: usize, job: impl FnOnce() + Send + 'static) -> bool {
        let mailbox = &self.mailboxes[shard % self.mailboxes.len()];
        let mut queue = mailbox.queue.lock().expect("pool lock poisoned");
        if queue.closed {
            return false;
        }
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        mailbox.available.notify_one();
        true
    }

    /// Jobs currently waiting (not yet started) on the given shard's queue.
    pub fn queue_depth(&self, shard: usize) -> usize {
        let mailbox = &self.mailboxes[shard % self.mailboxes.len()];
        mailbox.queue.lock().expect("pool lock poisoned").jobs.len()
    }

    /// Closes every queue, runs the jobs already queued, and joins the
    /// worker threads. Idempotent; also invoked by `Drop`.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        for mailbox in &self.mailboxes {
            mailbox.queue.lock().expect("pool lock poisoned").closed = true;
            mailbox.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            // Worker loops catch job panics, so a join failure is
            // exceptional. Never re-raise while already unwinding (Drop
            // during a panic): a double panic aborts the process.
            if let Err(payload) = worker.join() {
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(mailbox: &Mailbox) {
    loop {
        let job = {
            let mut queue = mailbox.queue.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = mailbox.available.wait(queue).expect("pool lock poisoned");
            }
        };
        // A panicking job must not take its worker (and thus its whole
        // shard) down with it: the queue would stay open, later
        // submissions would never run, and their requesters would wait
        // forever. The job's side channel (e.g. a dropped mpsc sender)
        // reports the failure to whoever submitted it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_every_submitted_job() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for shard in 0..50 {
            let counter = Arc::clone(&counter);
            assert!(pool.submit(shard, move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn same_shard_jobs_run_in_fifo_order() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = mpsc::channel();
        for n in 0..20 {
            let tx = tx.clone();
            pool.submit(2, move || tx.send(n).unwrap());
        }
        pool.shutdown();
        let seen: Vec<i32> = rx.try_iter().collect();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn shards_map_onto_workers_by_modulo() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        // Block worker 0 so its queue depth is observable.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.submit(0, move || {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        });
        started_rx.recv().unwrap();
        pool.submit(2, || {}); // shard 2 → worker 0, stuck behind the block
        assert_eq!(pool.queue_depth(0), 1);
        assert_eq!(pool.queue_depth(1), 0);
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_rejects_late_submissions() {
        let pool = WorkerPool::new(1);
        // Simulate the race by closing the queue directly: after close,
        // submit reports failure instead of silently dropping work.
        pool.mailboxes[0].queue.lock().unwrap().closed = true;
        assert!(!pool.submit(0, || panic!("must not run")));
        pool.mailboxes[0].available.notify_all();
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for shard in 0..10 {
                let counter = Arc::clone(&counter);
                pool.submit(shard, move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No explicit shutdown: Drop must still run everything.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn a_panicking_job_does_not_wedge_its_shard() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        pool.submit(0, || panic!("job blew up"));
        // The shard's worker must survive and run the next job.
        pool.submit(0, move || tx.send("still alive").unwrap());
        assert_eq!(rx.recv().unwrap(), "still alive");
        // Shutdown joins cleanly — the panic was contained.
        pool.shutdown();
    }

    #[test]
    fn zero_worker_request_is_clamped() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(7, move || tx.send(42).unwrap());
        pool.shutdown();
        assert_eq!(rx.recv().unwrap(), 42);
    }
}
