//! # plim-parallel — a minimal deterministic data-parallel executor
//!
//! The batch-compilation pipeline fans independent jobs across CPU cores.
//! This workspace builds offline, so instead of depending on `rayon` it
//! ships this small executor: scoped worker threads pull job indices from a
//! shared atomic counter (self-balancing, like a work-stealing pool whose
//! units are whole jobs) and results are merged back **in job order**, so
//! the output is byte-for-byte independent of scheduling.
//!
//! The API is deliberately a subset of rayon's `par_iter().map().collect()`
//! shape; swapping rayon in later is a one-function change in [`par_map`].
//!
//! For long-running services that need persistent workers rather than
//! one-shot fan-outs, the [`pool`] module provides a shard-addressed
//! [`pool::WorkerPool`] with graceful shutdown, and the [`queue`] module
//! a wakeable [`queue::CompletionQueue`] for handing finished work back
//! to an event-loop consumer.
//!
//! ```
//! use plim_parallel::{par_map, Parallelism};
//!
//! let squares = par_map(&[1u64, 2, 3, 4], Parallelism::Auto, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

pub mod pool;
pub mod queue;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Degree of parallelism for a [`par_map`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available hardware thread (capped at the job count).
    #[default]
    Auto,
    /// Run everything on the calling thread, in order.
    Serial,
    /// Exactly `n` workers (clamped to at least 1, capped at the job count).
    Threads(usize),
}

impl Parallelism {
    /// Parses a `--jobs`-style request: `None` means [`Parallelism::Auto`],
    /// `Some(0)` and `Some(1)` mean [`Parallelism::Serial`].
    pub fn from_jobs(jobs: Option<usize>) -> Self {
        match jobs {
            None => Parallelism::Auto,
            Some(0) | Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
        }
    }

    /// Number of worker threads this setting yields for `jobs` jobs.
    pub fn worker_count(self, jobs: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => available_threads(),
            Parallelism::Threads(n) => n.max(1),
        };
        cap.min(jobs).max(1)
    }
}

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item and collects the results **in item order**.
///
/// Jobs are distributed dynamically: each worker repeatedly claims the next
/// unclaimed index, so long jobs do not stall the queue behind them. The
/// result vector is identical to the serial
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for a pure
/// `f`, regardless of how jobs were scheduled.
///
/// # Panics
///
/// Propagates the panic of any job (the remaining workers finish their
/// current job first).
pub fn par_map<T, R, F>(items: &[T], parallelism: Parallelism, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = parallelism.worker_count(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else {
                            return done;
                        };
                        done.push((index, f(index, item)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (index, result) in buckets.into_iter().flatten() {
        debug_assert!(slots[index].is_none(), "job {index} ran twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every job ran exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(3),
            Parallelism::Threads(64),
        ] {
            let out = par_map(&items, parallelism, |i, &x| {
                assert_eq!(i, x);
                x * 2 + 1
            });
            let expected: Vec<usize> = items.iter().map(|&x| x * 2 + 1).collect();
            assert_eq!(out, expected, "{parallelism:?}");
        }
    }

    #[test]
    fn matches_serial_for_uneven_workloads() {
        // Jobs of wildly different cost still land in their own slot.
        let items: Vec<u64> = (0..48).map(|i| (i * 37) % 23).collect();
        let work = |_: usize, &n: &u64| -> u64 { (0..n * 1000).fold(n, |acc, x| acc ^ x) };
        let serial = par_map(&items, Parallelism::Serial, work);
        let parallel = par_map(&items, Parallelism::Threads(7), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = par_map(&[], Parallelism::Auto, |_, &x: &u32| x);
        assert!(none.is_empty());
        let one = par_map(&[9u32], Parallelism::Threads(8), |_, &x| x + 1);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn worker_counts_are_clamped() {
        assert_eq!(Parallelism::Serial.worker_count(100), 1);
        assert_eq!(Parallelism::Threads(4).worker_count(2), 2);
        assert_eq!(Parallelism::Threads(0).worker_count(5), 1);
        assert!(Parallelism::Auto.worker_count(1000) >= 1);
        // Even with zero jobs the count stays sane.
        assert_eq!(Parallelism::Auto.worker_count(0), 1);
    }

    #[test]
    fn from_jobs_maps_cli_conventions() {
        assert_eq!(Parallelism::from_jobs(None), Parallelism::Auto);
        assert_eq!(Parallelism::from_jobs(Some(0)), Parallelism::Serial);
        assert_eq!(Parallelism::from_jobs(Some(1)), Parallelism::Serial);
        assert_eq!(Parallelism::from_jobs(Some(6)), Parallelism::Threads(6));
    }

    #[test]
    fn propagates_job_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map(&[0, 1, 2, 3], Parallelism::Threads(2), |_, &x| {
                assert!(x != 2, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
