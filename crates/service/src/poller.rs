//! Thin safe wrappers over the OS readiness APIs (`epoll` / `kqueue`).
//!
//! The reactor in [`server`](crate::server) and the load-test client in
//! [`loadtest`](crate::loadtest) both multiplex thousands of non-blocking
//! sockets on one thread. The standard library exposes no readiness API,
//! and the workspace builds offline (no `mio`/`libc` crates), so this
//! module declares the handful of syscalls itself and confines every
//! `unsafe` block of the workspace behind three safe types:
//!
//! * [`Poller`] — an edge-triggered readiness queue (`epoll` on Linux,
//!   `kqueue` on macOS and the BSDs). Registrations pair a raw fd with a
//!   caller-chosen `u64` token; [`Poller::wait`] reports `(token,
//!   readable, writable)` events. Edge-triggered means an event fires on
//!   *transitions*, so consumers must drain a ready fd until it returns
//!   `WouldBlock` before waiting again.
//! * [`Waker`] — a self-pipe that wakes a sleeping [`Poller::wait`] from
//!   another thread. Worker threads complete compiles while the reactor
//!   sleeps; pushing the result and writing one byte here is what gets it
//!   delivered.
//! * [`raise_nofile_limit`] — lifts `RLIMIT_NOFILE` toward its hard cap,
//!   so a load test can actually open its thousands of sockets.
//!
//! Safety argument: every fd passed in is owned by the caller for the
//! lifetime of its registration (the reactor deregisters before dropping
//! a stream), buffers passed to the kernel are stack- or `Vec`-backed and
//! outlive the call, and all return codes are checked. No pointer from
//! the kernel is ever dereferenced beyond the reported event count.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What readiness to watch a registration for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd becomes readable.
    pub readable: bool,
    /// Report when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readability only (listeners, wake pipes).
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readability and writability (connection sockets).
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (or closed/errored — a read will not block).
    pub readable: bool,
    /// The fd is writable (or errored — a write will not block).
    pub writable: bool,
}

/// Syscalls shared by every supported platform.
mod unix {
    #![allow(non_camel_case_types)]
    use std::os::raw::{c_int, c_void};

    #[repr(C)]
    pub struct rlimit {
        pub rlim_cur: u64,
        pub rlim_max: u64,
    }

    #[cfg(target_os = "linux")]
    pub const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    pub const RLIMIT_NOFILE: c_int = 8;

    extern "C" {
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
    }

    /// Maps a `-1` return to `io::Error::last_os_error()`.
    pub fn cvt(result: c_int) -> std::io::Result<c_int> {
        if result < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(result)
        }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    //! `epoll`, edge-triggered via `EPOLLET`.
    #![allow(non_camel_case_types)]
    use std::os::raw::c_int;

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLLET: u32 = 1 << 31;

    // The kernel ABI packs this struct on x86-64 (and only there), so the
    // 64-bit payload sits at offset 4. Getting this wrong corrupts every
    // token the kernel hands back.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut epoll_event,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
))]
mod sys {
    //! `kqueue`, edge-triggered via `EV_CLEAR`.
    #![allow(non_camel_case_types)]
    use std::os::raw::c_int;

    pub const EVFILT_READ: i16 = -1;
    pub const EVFILT_WRITE: i16 = -2;
    pub const EV_ADD: u16 = 0x0001;
    pub const EV_DELETE: u16 = 0x0002;
    pub const EV_CLEAR: u16 = 0x0020;
    pub const EV_ERROR: u16 = 0x4000;
    pub const EV_EOF: u16 = 0x8000;

    // `udata` is `void *` in the C definition; declaring it `usize`
    // (same size, same alignment) keeps the struct plain data, which is
    // what lets [`Poller`](super::Poller) stay `Send`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct kevent_s {
        pub ident: usize,
        pub filter: i16,
        pub flags: u16,
        pub fflags: u32,
        pub data: isize,
        pub udata: usize,
    }

    #[repr(C)]
    pub struct timespec {
        pub tv_sec: i64,
        pub tv_nsec: i64,
    }

    extern "C" {
        pub fn kqueue() -> c_int;
        pub fn kevent(
            kq: c_int,
            changelist: *const kevent_s,
            nchanges: c_int,
            eventlist: *mut kevent_s,
            nevents: c_int,
            timeout: *const timespec,
        ) -> c_int;
    }
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
    target_os = "dragonfly"
)))]
compile_error!(
    "plim-service's reactor needs epoll or kqueue; this target has neither \
     (the offline pipeline in plim-compiler remains portable)"
);

/// How many kernel events one `wait` call can deliver.
const EVENT_BATCH: usize = 1024;

/// An edge-triggered readiness queue over `epoll`/`kqueue`.
///
/// See the [module docs](self) for the contract; in short: register owned
/// fds with unique tokens, drain ready fds until `WouldBlock`, deregister
/// before closing.
pub struct Poller {
    fd: RawFd,
    #[cfg(target_os = "linux")]
    buf: Vec<sys::epoll_event>,
    #[cfg(not(target_os = "linux"))]
    buf: Vec<sys::kevent_s>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").field("fd", &self.fd).finish()
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: `self.fd` came from epoll_create1/kqueue and is closed
        // exactly once (Drop consumes the only owner).
        unsafe {
            unix::close(self.fd);
        }
    }
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Creates the kernel readiness queue.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers involved; the return code is checked.
        let fd = unix::cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller {
            fd,
            buf: vec![sys::epoll_event { events: 0, data: 0 }; EVENT_BATCH],
        })
    }

    /// Starts watching `fd` with the given interest, edge-triggered.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `epoll_ctl` failure (e.g. `EEXIST` for a
    /// double registration).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut events = sys::EPOLLET | sys::EPOLLRDHUP;
        if interest.readable {
            events |= sys::EPOLLIN;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        let mut event = sys::epoll_event {
            events,
            data: token,
        };
        // SAFETY: `event` is a live stack value for the duration of the
        // call; the kernel copies it before returning.
        unix::cvt(unsafe { sys::epoll_ctl(self.fd, sys::EPOLL_CTL_ADD, fd, &mut event) })?;
        Ok(())
    }

    /// Stops watching `fd`. Call before closing the descriptor.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `epoll_ctl` failure.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        // A non-null event pointer keeps pre-2.6.9 kernels happy.
        let mut event = sys::epoll_event { events: 0, data: 0 };
        // SAFETY: as in `register`.
        unix::cvt(unsafe { sys::epoll_ctl(self.fd, sys::EPOLL_CTL_DEL, fd, &mut event) })?;
        Ok(())
    }

    /// Sleeps until at least one registered fd is ready (or the timeout
    /// elapses; `None` sleeps indefinitely), then appends the ready set to
    /// `events` (which is cleared first).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `epoll_wait` failure; `EINTR` is retried
    /// internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let millis = timeout_millis(timeout);
        let count = loop {
            // SAFETY: `buf` is an owned, correctly-sized allocation; the
            // kernel writes at most `EVENT_BATCH` entries and reports how
            // many, and only that prefix is read below.
            let result = unsafe {
                sys::epoll_wait(self.fd, self.buf.as_mut_ptr(), EVENT_BATCH as i32, millis)
            };
            match unix::cvt(result) {
                Ok(count) => break count as usize,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(error) => return Err(error),
            }
        };
        for entry in &self.buf[..count] {
            // Copy out of the (packed) struct before touching the fields.
            let (mask, data) = (entry.events, entry.data);
            events.push(Event {
                token: data,
                readable: mask & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP)
                    != 0,
                writable: mask & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    /// Creates the kernel readiness queue.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `kqueue` failure.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers involved; the return code is checked.
        let fd = unix::cvt(unsafe { sys::kqueue() })?;
        Ok(Poller {
            fd,
            buf: vec![
                sys::kevent_s {
                    ident: 0,
                    filter: 0,
                    flags: 0,
                    fflags: 0,
                    data: 0,
                    udata: 0,
                };
                EVENT_BATCH
            ],
        })
    }

    fn change(&self, fd: RawFd, filter: i16, flags: u16, token: u64) -> io::Result<()> {
        let change = sys::kevent_s {
            ident: fd as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: token as usize,
        };
        // SAFETY: `change` lives across the call; no eventlist is used.
        unix::cvt(unsafe {
            sys::kevent(
                self.fd,
                &change,
                1,
                std::ptr::null_mut(),
                0,
                std::ptr::null(),
            )
        })?;
        Ok(())
    }

    /// Starts watching `fd` with the given interest, edge-triggered.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `kevent` failure.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if interest.readable {
            self.change(fd, sys::EVFILT_READ, sys::EV_ADD | sys::EV_CLEAR, token)?;
        }
        if interest.writable {
            self.change(fd, sys::EVFILT_WRITE, sys::EV_ADD | sys::EV_CLEAR, token)?;
        }
        Ok(())
    }

    /// Stops watching `fd`. Call before closing the descriptor.
    ///
    /// # Errors
    ///
    /// Never fails in practice; absent filters are ignored.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        // A registration may carry one filter or both; deleting an absent
        // filter yields ENOENT, which is exactly the intended end state.
        let _ = self.change(fd, sys::EVFILT_READ, sys::EV_DELETE, 0);
        let _ = self.change(fd, sys::EVFILT_WRITE, sys::EV_DELETE, 0);
        Ok(())
    }

    /// Sleeps until at least one registered fd is ready (or the timeout
    /// elapses; `None` sleeps indefinitely), then appends the ready set to
    /// `events` (which is cleared first).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `kevent` failure; `EINTR` is retried
    /// internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let ts = timeout.map(|t| sys::timespec {
            tv_sec: t.as_secs() as i64,
            tv_nsec: i64::from(t.subsec_nanos()),
        });
        let ts_ptr = ts.as_ref().map_or(std::ptr::null(), |ts| ts as *const _);
        let count = loop {
            // SAFETY: `buf` is an owned, correctly-sized allocation; the
            // kernel writes at most `EVENT_BATCH` entries and reports how
            // many, and only that prefix is read below.
            let result = unsafe {
                sys::kevent(
                    self.fd,
                    std::ptr::null(),
                    0,
                    self.buf.as_mut_ptr(),
                    EVENT_BATCH as i32,
                    ts_ptr,
                )
            };
            match unix::cvt(result) {
                Ok(count) => break count as usize,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(error) => return Err(error),
            }
        };
        for entry in &self.buf[..count] {
            let error = entry.flags & (sys::EV_ERROR | sys::EV_EOF) != 0;
            events.push(Event {
                token: entry.udata as u64,
                readable: entry.filter == sys::EVFILT_READ || error,
                writable: entry.filter == sys::EVFILT_WRITE || error,
            });
        }
        Ok(())
    }
}

fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => {
            // Round up so a 0 < t < 1ms timeout does not busy-spin.
            let millis = t.as_millis();
            let millis = if millis == 0 && !t.is_zero() {
                1
            } else {
                millis
            };
            i32::try_from(millis).unwrap_or(i32::MAX)
        }
    }
}

/// A cross-thread wakeup for a sleeping [`Poller::wait`] (self-pipe).
///
/// Register [`Waker::read_fd`] with the poller under a reserved token;
/// any thread holding a clone can then [`wake`](Waker::wake) the loop.
/// The consumer calls [`drain`](Waker::drain) when the token fires.
#[derive(Debug, Clone)]
pub struct Waker {
    inner: std::sync::Arc<WakerFds>,
}

#[derive(Debug)]
struct WakerFds {
    read: RawFd,
    write: RawFd,
}

impl Drop for WakerFds {
    fn drop(&mut self) {
        // SAFETY: both fds came from pipe()/pipe2() and are closed exactly
        // once (Drop of the sole Arc payload).
        unsafe {
            unix::close(self.read);
            unix::close(self.write);
        }
    }
}

impl Waker {
    /// Creates the pipe pair (both ends non-blocking and close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates the underlying `pipe` failure.
    pub fn new() -> io::Result<Waker> {
        let mut fds = [0 as std::os::raw::c_int; 2];
        #[cfg(target_os = "linux")]
        {
            const O_NONBLOCK: std::os::raw::c_int = 0o4000;
            const O_CLOEXEC: std::os::raw::c_int = 0o2000000;
            extern "C" {
                fn pipe2(
                    fds: *mut std::os::raw::c_int,
                    flags: std::os::raw::c_int,
                ) -> std::os::raw::c_int;
            }
            // SAFETY: `fds` is a live 2-element array the kernel fills.
            unix::cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        }
        #[cfg(not(target_os = "linux"))]
        {
            const F_SETFD: std::os::raw::c_int = 2;
            const F_SETFL: std::os::raw::c_int = 4;
            const FD_CLOEXEC: std::os::raw::c_int = 1;
            const O_NONBLOCK: std::os::raw::c_int = 4;
            extern "C" {
                fn pipe(fds: *mut std::os::raw::c_int) -> std::os::raw::c_int;
                fn fcntl(
                    fd: std::os::raw::c_int,
                    cmd: std::os::raw::c_int,
                    arg: std::os::raw::c_int,
                ) -> std::os::raw::c_int;
            }
            // SAFETY: as above; fcntl takes plain integers.
            unsafe {
                unix::cvt(pipe(fds.as_mut_ptr()))?;
                for fd in fds {
                    unix::cvt(fcntl(fd, F_SETFL, O_NONBLOCK))?;
                    unix::cvt(fcntl(fd, F_SETFD, FD_CLOEXEC))?;
                }
            }
        }
        Ok(Waker {
            inner: std::sync::Arc::new(WakerFds {
                read: fds[0],
                write: fds[1],
            }),
        })
    }

    /// The end to register with the poller ([`Interest::READABLE`]).
    pub fn read_fd(&self) -> RawFd {
        self.inner.read
    }

    /// Wakes the poller. Never blocks: once the pipe is full a wakeup is
    /// already pending, so a short write is success, not failure.
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: one owned byte; the result is intentionally ignored
        // (EAGAIN means "already signalled", EPIPE means the loop exited).
        unsafe {
            unix::write(self.inner.write, byte.as_ptr().cast(), 1);
        }
    }

    /// Drains every pending wake byte after the token fired.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            // SAFETY: `sink` is a live owned buffer of the stated length.
            let n = unsafe { unix::read(self.inner.read, sink.as_mut_ptr().cast(), sink.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

/// Raises the soft `RLIMIT_NOFILE` to `min(wanted, hard limit)` and
/// returns the resulting soft limit. A load test driving thousands of
/// sockets calls this first; the default soft limit on many systems
/// (1024) would otherwise exhaust fds mid-run.
///
/// # Errors
///
/// Propagates `getrlimit`/`setrlimit` failures.
pub fn raise_nofile_limit(wanted: u64) -> io::Result<u64> {
    let mut limit = unix::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `limit` is a live stack value the kernel fills/reads.
    unsafe {
        unix::cvt(unix::getrlimit(unix::RLIMIT_NOFILE, &mut limit))?;
        if limit.rlim_cur >= wanted {
            return Ok(limit.rlim_cur);
        }
        limit.rlim_cur = wanted.min(limit.rlim_max);
        unix::cvt(unix::setrlimit(unix::RLIMIT_NOFILE, &limit))?;
    }
    Ok(limit.rlim_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_a_sleeping_poller_from_another_thread() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller
            .register(waker.read_fd(), 42, Interest::READABLE)
            .unwrap();
        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        waker.drain();
        handle.join().unwrap();
        // Drained: a zero-timeout wait reports nothing for the pipe.
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.iter().all(|e| e.token != 42));
    }

    #[test]
    fn edge_triggered_sockets_report_data_and_tokens_survive_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        // A token above u32::MAX proves the full 64-bit payload survives
        // the kernel round trip (the packed-struct hazard on x86-64).
        let token = (7u64 << 40) | 9;
        poller
            .register(server.as_raw_fd(), token, Interest::BOTH)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let mut readable = false;
        for _ in 0..50 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if events.iter().any(|e| e.token == token && e.readable) {
                readable = true;
                break;
            }
        }
        assert!(readable, "no readable event for the socket");
        let mut buf = [0u8; 16];
        let mut server = server;
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        poller.deregister(server.as_raw_fd()).unwrap();
        client.write_all(b"gone").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != token));
    }

    #[test]
    fn nofile_limit_is_at_least_what_we_ask_for_within_the_hard_cap() {
        let limit = raise_nofile_limit(256).unwrap();
        assert!(limit >= 256, "soft limit {limit} below a trivial request");
    }

    #[test]
    fn zero_timeout_returns_immediately_with_no_events() {
        let mut poller = Poller::new().unwrap();
        let mut events = vec![Event {
            token: 0,
            readable: false,
            writable: false,
        }];
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty());
    }
}
