//! The compile pipeline shared by offline `plimc` and the `plimd` daemon.
//!
//! Both consumers run the same five stages — sniff, parse, optimize,
//! compile (+ verify), emit — through the functions here, so an artifact
//! served from the daemon is byte-identical to what `plimc` prints
//! offline for the same input and options.

use mig::Mig;
use plim_compiler::report::CostReport;
use plim_compiler::verify::{verify, verify_artifact};
use plim_compiler::{compile_full, Compilation, CompilerOptions, RewriteMode, Target};

/// Input format of a compile request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputFormat {
    /// The MIG text format ([`mig::io`]).
    #[default]
    Mig,
    /// ASCII AIGER ([`mig::aiger`]).
    Aag,
}

impl InputFormat {
    /// The wire/command-line name of the format.
    pub fn name(self) -> &'static str {
        match self {
            InputFormat::Mig => "mig",
            InputFormat::Aag => "aag",
        }
    }

    /// Parses a wire/command-line name.
    ///
    /// # Errors
    ///
    /// Returns a one-line message naming the valid formats.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "mig" => Ok(InputFormat::Mig),
            "aag" => Ok(InputFormat::Aag),
            other => Err(format!("unknown format `{other}`")),
        }
    }

    /// The format implied by a file name (`.aag` → AIGER, MIG otherwise).
    pub fn from_path(path: &str) -> Self {
        if path.ends_with(".aag") {
            InputFormat::Aag
        } else {
            InputFormat::Mig
        }
    }
}

/// Whether the document starts with the binary-AIGER magic: an `aig`
/// keyword followed by at least the five numeric header fields
/// `M I L O A`. Requiring the numeric fields keeps text inputs that merely
/// begin with the letters `aig` (say, a MIG node named `aig`) from being
/// misdetected. The binary format delta-encodes its AND section, so it
/// cannot be fed to any of the text parsers.
pub fn is_binary_aiger(bytes: &[u8]) -> bool {
    let first_line = bytes.split(|&b| b == b'\n').next().unwrap_or(bytes);
    let mut fields = first_line.split(|&b| b == b' ').filter(|f| !f.is_empty());
    if fields.next() != Some(b"aig") {
        return false;
    }
    let mut numeric_fields = 0;
    for field in fields {
        if !field.iter().all(u8::is_ascii_digit) {
            return false;
        }
        numeric_fields += 1;
    }
    numeric_fields >= 5
}

/// Parses a logic network from text in the given format.
///
/// # Errors
///
/// Returns the underlying parser's diagnostic prefixed with the format
/// name (matching `plimc`'s long-standing messages).
pub fn parse_network(format: InputFormat, text: &str) -> Result<Mig, String> {
    match format {
        InputFormat::Aag => mig::aiger::parse_aiger(text).map_err(|e| format!("aiger: {e}")),
        InputFormat::Mig => mig::io::parse_mig(text).map_err(|e| format!("mig: {e}")),
    }
}

/// Everything that shapes the compiled artifact besides the graph itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileSpec {
    /// Rewrite effort; 0 disables rewriting (the graph is only cleaned).
    pub effort: usize,
    /// Use rewrite + majority resynthesis instead of plain rewriting.
    pub extended: bool,
    /// Compiler configuration.
    pub options: CompilerOptions,
    /// Check the program against bit-parallel simulation after compiling.
    pub verify: bool,
}

impl Default for CompileSpec {
    fn default() -> Self {
        CompileSpec {
            effort: 4,
            extended: false,
            options: CompilerOptions::new(),
            verify: true,
        }
    }
}

/// Runs the optimization stage of the pipeline on `input`.
///
/// The rewrite engine is selected by `spec.options.rewrite`: `arena` is
/// the in-place depth-bounded rewriter, `rebuild` reconstructs through
/// the hash-consing builder, and `egraph` saturates an e-graph and keeps
/// the extraction only when its *compiled* cost beats the arena result.
///
/// # Panics
///
/// Panics for [`RewriteMode::Egraph`] when the equality-saturation hook
/// has not been installed (`plim_egraph::install()`).
pub fn optimize(input: &Mig, spec: &CompileSpec) -> Mig {
    if spec.effort == 0 {
        input.cleaned()
    } else if spec.extended {
        mig::resynth::rewrite_extended(input, spec.effort)
    } else {
        match spec.options.rewrite {
            RewriteMode::Arena => mig::rewrite::rewrite(input, spec.effort),
            RewriteMode::Rebuild => mig::rewrite::rewrite_rebuild(input, spec.effort),
            RewriteMode::Egraph => {
                let optimize = plim_compiler::egraph_optimizer().expect(
                    "RewriteMode::Egraph needs the equality-saturation hook: call \
                     plim_egraph::install() before compiling",
                );
                let baseline = mig::rewrite::rewrite(input, spec.effort);
                optimize(input, &baseline, spec.effort, spec.options)
            }
        }
    }
}

/// Everything the compile stage produced: the rewritten graph plus the
/// compilation (program, post-optimization IR, pass report). Emission
/// renders artifacts from here, so the daemon and offline `plimc` print
/// byte-identical output for every `--emit` kind.
#[derive(Debug, Clone)]
pub struct Artifacts {
    /// The MIG after the rewrite stage (what was compiled).
    pub optimized: Mig,
    /// The compilation: program, IR, and per-pass accounting.
    pub compilation: Compilation,
    /// The emission target the compilation was made for. [`emit`]
    /// dispatches target-specific artifact kinds through its backend.
    pub target: Target,
}

/// Optimizes, compiles and (optionally) verifies `input` under `spec`.
///
/// Verification dispatches on the target: the RM3 reference program is
/// always checked against simulation (the middle end's semantic anchor),
/// and a non-RM3 target's artifact is additionally checked through its
/// backend's own executor.
///
/// # Errors
///
/// Returns a one-line message when verification fails.
pub fn execute(input: &Mig, spec: &CompileSpec) -> Result<Artifacts, String> {
    let optimized = optimize(input, spec);
    let compilation = compile_full(&optimized, spec.options);
    if spec.verify {
        verify(&optimized, &compilation.compiled, 4, 0xDAC2016)
            .map_err(|e| format!("verification: {e}"))?;
        if spec.options.target != Target::RM3 {
            let artifact = spec.options.target.backend().emit(&compilation.ir);
            verify_artifact(&optimized, artifact.as_ref(), 4, 0xDAC2016)
                .map_err(|e| format!("verification ({}): {e}", spec.options.target))?;
        }
    }
    Ok(Artifacts {
        optimized,
        compilation,
        target: spec.options.target,
    })
}

/// The artifact kinds `--emit` understands, for diagnostics and docs.
pub const EMIT_KINDS: [&str; 6] = ["listing", "asm", "stats", "dot", "mig", "ir"];

/// Renders the requested artifact. The returned string is printed with
/// `print!` by every consumer (it already ends in a newline), so daemon
/// and offline output agree byte-for-byte.
///
/// # Errors
///
/// Returns a one-line message for unknown artifact kinds.
pub fn emit(kind: &str, artifacts: &Artifacts) -> Result<String, String> {
    let compiled = &artifacts.compilation.compiled;
    // Target-specific artifact kinds route through the active backend;
    // the graph- and IR-level kinds below are target-neutral. The RM3 arms
    // stay exactly as they were before the backend trait existed, so the
    // default target's output is byte-identical to the pre-trait pipeline.
    if artifacts.target != Target::RM3 {
        match kind {
            "listing" => {
                return Ok(artifacts
                    .target
                    .backend()
                    .emit(&artifacts.compilation.ir)
                    .listing())
            }
            "stats" => {
                return Ok(artifacts
                    .target
                    .backend()
                    .emit(&artifacts.compilation.ir)
                    .stats_text())
            }
            "asm" => {
                return Err(format!(
                    "--emit asm renders RM3 assembly; target `{}` prints its native \
                     form via --emit listing",
                    artifacts.target
                ))
            }
            _ => {}
        }
    }
    match kind {
        "listing" => Ok(compiled.program.to_string()),
        "asm" => Ok(plim::asm::write_asm(&compiled.program)),
        "stats" => Ok(format!("{}\n", CostReport::analyze(compiled))),
        "dot" => Ok(mig::dot::to_dot(&artifacts.optimized)),
        "mig" => Ok(mig::io::write_mig(&artifacts.optimized)),
        "ir" => Ok(artifacts.compilation.ir.dump()),
        other => Err(format!("unknown --emit `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const AND_MIG: &str = "inputs a b\nn = maj(0, a, b)\noutput f = n\n";

    #[test]
    fn format_names_round_trip_and_sniff_from_paths() {
        assert_eq!(InputFormat::parse("mig"), Ok(InputFormat::Mig));
        assert_eq!(InputFormat::parse("aag"), Ok(InputFormat::Aag));
        assert!(InputFormat::parse("verilog").is_err());
        assert_eq!(InputFormat::from_path("x.aag"), InputFormat::Aag);
        assert_eq!(InputFormat::from_path("x.mig"), InputFormat::Mig);
        assert_eq!(InputFormat::from_path("-"), InputFormat::Mig);
    }

    #[test]
    fn binary_aiger_sniff_requires_numeric_header() {
        assert!(is_binary_aiger(b"aig 3 2 0 1 1\nrest"));
        assert!(!is_binary_aiger(b"aag 3 2 0 1 1\n"));
        assert!(!is_binary_aiger(b"aig = maj(0, 1, 0)\n"));
        assert!(!is_binary_aiger(b"aig 1 2\n"));
    }

    #[test]
    fn execute_compiles_and_verifies() {
        let input = parse_network(InputFormat::Mig, AND_MIG).unwrap();
        let artifacts = execute(&input, &CompileSpec::default()).unwrap();
        assert!(artifacts.compilation.compiled.stats.instructions > 0);
        for kind in EMIT_KINDS {
            let artifact = emit(kind, &artifacts).unwrap();
            assert!(artifact.ends_with('\n'), "{kind} artifact misses newline");
        }
        assert!(emit("png", &artifacts).is_err());
    }

    #[test]
    fn emit_dispatches_non_rm3_targets_through_their_backend() {
        plim_backends::install();
        let input = parse_network(InputFormat::Mig, AND_MIG).unwrap();
        let mut spec = CompileSpec::default();
        spec.options = spec
            .options
            .target(Target::parse("ambit").expect("registered"));
        let artifacts = execute(&input, &spec).unwrap();
        let listing = emit("listing", &artifacts).unwrap();
        assert!(listing.starts_with(".ambit v1\n"), "{listing}");
        let stats = emit("stats", &artifacts).unwrap();
        assert!(stats.starts_with("target=ambit "), "{stats}");
        let err = emit("asm", &artifacts).unwrap_err();
        assert!(err.contains("ambit"), "{err}");
        // Graph- and IR-level kinds stay target-neutral.
        for kind in ["dot", "mig", "ir"] {
            assert_eq!(emit(kind, &artifacts).unwrap(), {
                let rm3 = execute(&input, &CompileSpec::default()).unwrap();
                emit(kind, &rm3).unwrap()
            });
        }
    }

    #[test]
    fn parse_errors_carry_format_prefix() {
        let err = parse_network(InputFormat::Mig, "garbage").unwrap_err();
        assert!(err.starts_with("mig: "), "{err}");
        let err = parse_network(InputFormat::Aag, "garbage").unwrap_err();
        assert!(err.starts_with("aiger: "), "{err}");
    }
}
