//! `plimc loadtest` — a many-connection pipelined client harness.
//!
//! Drives a running `plimd` with thousands of *concurrent* connections
//! from one thread, using the same edge-triggered
//! [`Poller`] as the daemon's reactor. Every
//! connection pipelines up to `pipeline` requests and keeps its window
//! full until its quota is sent; every response is byte-compared against
//! the offline pipeline's output for the same circuit, so a passing run
//! proves the served artifacts are byte-identical to `plimc` offline —
//! under concurrency, pipelining, and cache churn, not just one request
//! at a time.
//!
//! All connections are opened (and registered) before the first request
//! is sent, so the advertised concurrency is real: the daemon holds every
//! socket simultaneously, not a few at a time through a pool.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use crate::pipeline::{self, CompileSpec, InputFormat};
use crate::poller::{raise_nofile_limit, Event, Interest, Poller};
use crate::protocol::{CompileRequest, Request, Response};

/// A whole run must finish within this; a hung daemon (or a deadlocked
/// pipeline) fails the test instead of wedging CI.
const RUN_DEADLINE: Duration = Duration::from_secs(300);
const READ_CHUNK: usize = 64 << 10;

/// One circuit the load test drives, with its precomputed offline answer.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Display name for diagnostics.
    pub name: String,
    /// MIG text source.
    pub source: String,
    /// The offline pipeline's `--emit listing` output for `source` under
    /// default options — what every served response must equal, byte for
    /// byte. Build it with [`offline_expected`].
    pub expected: String,
}

/// Configuration of a load-test run.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// Concurrent connections to hold open.
    pub connections: usize,
    /// Per-connection pipelining window (requests in flight at once).
    pub pipeline: usize,
    /// Requests each connection sends over its lifetime.
    pub requests_per_conn: usize,
    /// Circuits to request, assigned to connections round-robin.
    pub circuits: Vec<Circuit>,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            addr: "127.0.0.1:7393".to_string(),
            connections: 1000,
            pipeline: 8,
            requests_per_conn: 8,
            circuits: Vec::new(),
        }
    }
}

/// What a load-test run measured.
#[derive(Debug, Clone, Default)]
pub struct LoadtestReport {
    /// Connections successfully opened and driven to completion.
    pub connections: usize,
    /// Requests written to the wire.
    pub requests: u64,
    /// Responses received and checked.
    pub responses: u64,
    /// Responses served from a cache (in-memory or persistent).
    pub cached: u64,
    /// Error responses, early server closes, transport failures.
    pub errors: u64,
    /// Compile responses whose output differed from the offline pipeline.
    pub mismatches: u64,
    /// Wall-clock time of the request phase (connect phase excluded).
    pub elapsed: Duration,
    /// Request→response latency percentiles, in microseconds.
    pub p50_us: u64,
    /// 90th percentile latency (µs).
    pub p90_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// Worst observed latency (µs).
    pub max_us: u64,
}

impl LoadtestReport {
    /// Whether every response arrived, matched, and succeeded.
    pub fn passed(&self) -> bool {
        self.errors == 0 && self.mismatches == 0 && self.responses == self.requests
    }

    /// Requests per second over the request phase.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.responses as f64 / self.elapsed.as_secs_f64()
        }
    }
}

impl std::fmt::Display for LoadtestReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loadtest: {} {} conns, {}/{} responses in {:.2?} ({:.0} req/s), \
             {} cached, {} errors, {} mismatches, \
             latency µs p50={} p90={} p99={} max={}",
            if self.passed() { "OK" } else { "FAILED" },
            self.connections,
            self.responses,
            self.requests,
            self.elapsed,
            self.throughput(),
            self.cached,
            self.errors,
            self.mismatches,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
        )
    }
}

/// Computes the offline pipeline's `--emit listing` output for a circuit
/// under default options — the byte-identity reference for [`run`].
///
/// # Errors
///
/// Returns the pipeline's one-line parse/verify diagnostic.
pub fn offline_expected(source: &str) -> Result<String, String> {
    let mig = pipeline::parse_network(InputFormat::Mig, source)?;
    let artifacts = pipeline::execute(&mig, &CompileSpec::default())?;
    pipeline::emit("listing", &artifacts)
}

struct Client {
    stream: TcpStream,
    circuit: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    read_buf: Vec<u8>,
    sent: usize,
    received: usize,
    inflight: VecDeque<Instant>,
    done: bool,
}

/// Runs the load test against a daemon that is already listening.
///
/// # Errors
///
/// Returns a one-line message when the setup fails (bad config, connect
/// failures, fd limit) or the run exceeds its deadline. Per-response
/// failures are *not* errors here — they are counted in the report so the
/// caller can print it before failing.
pub fn run(config: &LoadtestConfig) -> Result<LoadtestReport, String> {
    if config.connections == 0 || config.requests_per_conn == 0 {
        return Err("loadtest needs at least one connection and one request".to_string());
    }
    if config.circuits.is_empty() {
        return Err("loadtest needs at least one circuit".to_string());
    }
    let window = config.pipeline.max(1);
    raise_nofile_limit(config.connections as u64 + 64)
        .map_err(|e| format!("raising the open-file limit: {e}"))?;

    // One encoded request line per circuit, reused by every connection.
    let request_lines: Vec<Vec<u8>> = config
        .circuits
        .iter()
        .map(|circuit| {
            let mut line = Request::Compile(CompileRequest {
                format: InputFormat::Mig,
                source: circuit.source.clone(),
                spec: CompileSpec::default(),
                emit: "listing".to_string(),
            })
            .to_json();
            line.push('\n');
            line.into_bytes()
        })
        .collect();

    // Phase 1: open every connection before sending anything.
    let mut poller = Poller::new().map_err(|e| format!("creating the poller: {e}"))?;
    let mut clients = Vec::with_capacity(config.connections);
    for index in 0..config.connections {
        let stream = TcpStream::connect(&config.addr)
            .map_err(|e| format!("connection {index}: cannot connect to {}: {e}", config.addr))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("connection {index}: unblocking: {e}"))?;
        let _ = stream.set_nodelay(true);
        poller
            .register(stream.as_raw_fd(), index as u64, Interest::BOTH)
            .map_err(|e| format!("connection {index}: registering: {e}"))?;
        clients.push(Client {
            stream,
            circuit: index % config.circuits.len(),
            write_buf: Vec::new(),
            write_pos: 0,
            read_buf: Vec::new(),
            sent: 0,
            received: 0,
            inflight: VecDeque::new(),
            done: false,
        });
        // A brief breather every so often keeps a 1-CPU host's accept
        // queue from overflowing while the daemon is busy elsewhere.
        if index % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Phase 2: drive every connection's pipeline until the quotas drain.
    let mut report = LoadtestReport {
        connections: config.connections,
        ..LoadtestReport::default()
    };
    let mut latencies: Vec<u64> = Vec::with_capacity(config.connections * config.requests_per_conn);
    let started = Instant::now();
    let deadline = started + RUN_DEADLINE;
    let mut remaining = clients.len();
    for client in &mut clients {
        pump(
            client,
            config,
            &request_lines,
            window,
            &mut report,
            &mut latencies,
        );
        if client.done {
            finish(&poller, client, &mut remaining);
        }
    }
    let mut events: Vec<Event> = Vec::new();
    while remaining > 0 {
        if Instant::now() >= deadline {
            return Err(format!(
                "loadtest deadline exceeded: {} of {} connections unfinished after {:?}",
                remaining,
                clients.len(),
                RUN_DEADLINE
            ));
        }
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .map_err(|e| format!("polling: {e}"))?;
        for event in &events {
            let index = event.token as usize;
            if index >= clients.len() || clients[index].done {
                continue;
            }
            pump(
                &mut clients[index],
                config,
                &request_lines,
                window,
                &mut report,
                &mut latencies,
            );
            if clients[index].done {
                finish(&poller, &mut clients[index], &mut remaining);
            }
        }
    }
    report.elapsed = started.elapsed();

    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            let rank = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
            latencies[rank - 1]
        }
    };
    report.p50_us = percentile(0.50);
    report.p90_us = percentile(0.90);
    report.p99_us = percentile(0.99);
    report.max_us = latencies.last().copied().unwrap_or(0);
    Ok(report)
}

fn finish(poller: &Poller, client: &mut Client, remaining: &mut usize) {
    let _ = poller.deregister(client.stream.as_raw_fd());
    let _ = client.stream.shutdown(std::net::Shutdown::Both);
    *remaining -= 1;
}

/// Drives one connection as far as it will go without blocking: top up
/// the pipeline window, flush writes, drain and check responses.
fn pump(
    client: &mut Client,
    config: &LoadtestConfig,
    request_lines: &[Vec<u8>],
    window: usize,
    report: &mut LoadtestReport,
    latencies: &mut Vec<u64>,
) {
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let mut progressed = false;
        // Top up the window.
        while client.sent < config.requests_per_conn && client.inflight.len() < window {
            client
                .write_buf
                .extend_from_slice(&request_lines[client.circuit]);
            client.inflight.push_back(Instant::now());
            client.sent += 1;
            report.requests += 1;
            progressed = true;
        }
        // Flush.
        while client.write_pos < client.write_buf.len() {
            match client.stream.write(&client.write_buf[client.write_pos..]) {
                Ok(0) => {
                    fail(client, report, "zero-length write");
                    return;
                }
                Ok(n) => {
                    client.write_pos += n;
                    progressed = true;
                }
                Err(error) if error.kind() == ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                Err(error) => {
                    fail(client, report, &format!("write failed: {error}"));
                    return;
                }
            }
        }
        if client.write_pos == client.write_buf.len() && !client.write_buf.is_empty() {
            client.write_buf.clear();
            client.write_pos = 0;
        }
        // Drain responses.
        loop {
            match client.stream.read(&mut chunk) {
                Ok(0) => {
                    if client.received < config.requests_per_conn {
                        fail(client, report, "server closed the connection early");
                    } else {
                        client.done = true;
                    }
                    return;
                }
                Ok(n) => {
                    client.read_buf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                    consume_responses(client, config, report, latencies);
                    if client.done {
                        return;
                    }
                }
                Err(error) if error.kind() == ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                Err(error) => {
                    fail(client, report, &format!("read failed: {error}"));
                    return;
                }
            }
        }
        if !progressed {
            return;
        }
    }
}

fn fail(client: &mut Client, report: &mut LoadtestReport, reason: &str) {
    report.errors += 1;
    eprintln!("loadtest: connection error: {reason}");
    client.done = true;
}

fn consume_responses(
    client: &mut Client,
    config: &LoadtestConfig,
    report: &mut LoadtestReport,
    latencies: &mut Vec<u64>,
) {
    while let Some(end) = client.read_buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = client.read_buf.drain(..=end).collect();
        let sent_at = client.inflight.pop_front();
        client.received += 1;
        report.responses += 1;
        if let Some(sent_at) = sent_at {
            latencies.push(sent_at.elapsed().as_micros() as u64);
        }
        let parsed = std::str::from_utf8(&line)
            .map_err(|_| "response is not UTF-8".to_string())
            .and_then(Response::from_json);
        match parsed {
            Ok(Response::Compile(compile)) => {
                if compile.cached {
                    report.cached += 1;
                }
                let expected = &config.circuits[client.circuit].expected;
                if compile.output != *expected {
                    report.mismatches += 1;
                    if report.mismatches == 1 {
                        eprintln!(
                            "loadtest: BYTE MISMATCH on `{}`: served {} bytes, offline {} bytes",
                            config.circuits[client.circuit].name,
                            compile.output.len(),
                            expected.len(),
                        );
                    }
                }
            }
            Ok(Response::Error(error)) => {
                report.errors += 1;
                if report.errors == 1 {
                    eprintln!("loadtest: server error: {}", error.message);
                }
            }
            Ok(_) => report.errors += 1,
            Err(message) => {
                report.errors += 1;
                if report.errors == 1 {
                    eprintln!("loadtest: bad response: {message}");
                }
            }
        }
        if client.received == config.requests_per_conn {
            client.done = true;
            return;
        }
    }
}
