//! The `plimd` daemon: TCP listener, shard dispatch, result cache.
//!
//! ## Architecture
//!
//! One listener thread accepts connections; each connection gets a plain
//! IO thread that reads newline-delimited requests and writes one response
//! line per request. Compile work never runs on an IO thread: the request
//! is parsed and digested there, then dispatched to the shard that owns
//! its cache key — one of N worker threads of a
//! [`plim_parallel::pool::WorkerPool`], each paired with its own
//! [`LruCache`] shard. Pinning a key range to one worker serializes
//! same-key requests, so a burst of identical submissions compiles once
//! and the rest are answered from the cache the first one filled.
//!
//! ## Cache semantics
//!
//! The key is the canonical structural digest of the parsed graph
//! ([`mig::canon::structural_digest`]) plus the request-options
//! fingerprint. A hit returns the artifact stored by the first-seen
//! member of the key's equivalence class: byte-identical for repeats of
//! the same dump, and functionally equivalent (same logic, possibly a
//! different but equally valid instruction schedule) for dumps that only
//! differ in node order or Ω.I complement placement. Entries are evicted
//! least-recently-used once the configured byte budget is exceeded.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mig::canon::structural_digest;
use plim_compiler::cache::{fnv128, CacheKey, LruCache};
use plim_parallel::pool::WorkerPool;

use crate::pipeline::{self, EMIT_KINDS};
use crate::protocol::{
    cache_key, CompileRequest, CompileResponse, Request, Response, ServiceStats, ShardStats,
};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads (= cache shards); 0 means one per hardware thread.
    pub threads: usize,
    /// Byte budget of the result cache, split evenly across shards. An
    /// artifact larger than `cache_bytes / threads` is never cached (the
    /// daemon logs when that happens) — on many-core hosts serving large
    /// circuits, raise the budget accordingly.
    pub cache_bytes: usize,
    /// Log one line per request to stderr.
    pub log: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7393".to_string(),
            threads: 0,
            cache_bytes: 64 << 20,
            log: false,
        }
    }
}

/// One cached artifact (a compile response minus its per-request fields).
#[derive(Debug)]
struct Artifact {
    instructions: u64,
    rams: u64,
    max_cell_writes: u64,
    output: String,
}

impl Artifact {
    /// Cache weight: the artifact body plus bookkeeping overhead.
    fn weight(&self) -> usize {
        self.output.len() + 64
    }
}

struct Shared {
    pool: WorkerPool,
    caches: Vec<Mutex<LruCache<Arc<Artifact>>>>,
    /// First-level index: `(fnv128(source), fnv128(format))` → the
    /// canonical structural digest of the parsed graph. A hit here skips
    /// the parser entirely for byte-identical resubmissions — under *any*
    /// options, since the mapping is option-independent (the full cache
    /// key is derived by adding the request fingerprint at lookup). The
    /// format belongs in the key: the same bytes under another format
    /// would parse differently or not at all. Artifacts themselves live
    /// in (and are accounted to) the sharded caches above.
    text_index: Mutex<LruCache<u128>>,
    shutdown: AtomicBool,
    log: bool,
}

impl Shared {
    fn shards(&self) -> usize {
        self.caches.len()
    }
}

/// A bound (but not yet running) compile service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("shards", &self.shards())
            .finish()
    }
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the address cannot be bound.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        // Populate the target registry before the first request can name a
        // `+target` spec suffix (option parsing happens on IO threads).
        plim_backends::install();
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let threads = if config.threads == 0 {
            plim_parallel::available_threads()
        } else {
            config.threads
        };
        let shard_budget = config.cache_bytes / threads.max(1);
        let caches = (0..threads.max(1))
            .map(|_| Mutex::new(LruCache::new(shard_budget)))
            .collect();
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                pool: WorkerPool::new(threads),
                caches,
                // ~16k text mappings; entries weigh a fixed 64 bytes.
                text_index: Mutex::new(LruCache::new(1 << 20)),
                shutdown: AtomicBool::new(false),
                log: config.log,
            }),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the socket address is unavailable.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("resolving the listen address: {e}"))
    }

    /// Serves until a `shutdown` request arrives. Queued compile jobs
    /// finish before this returns.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on listener failures.
    pub fn run(self) -> Result<(), String> {
        let addr = self.local_addr()?;
        let mut connections = Vec::new();
        let mut consecutive_errors = 0u32;
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    consecutive_errors = 0;
                    let shared = Arc::clone(&self.shared);
                    connections.push(std::thread::spawn(move || {
                        handle_connection(&shared, stream, addr);
                    }));
                    // Reap finished IO threads so a long-running daemon
                    // serving many short-lived connections (one per
                    // `plimc request`) does not accumulate handles.
                    connections.retain(|connection| !connection.is_finished());
                }
                Err(error) => {
                    // Per-connection accept failures (ECONNABORTED, a
                    // transient EMFILE burst) must not kill the daemon;
                    // only a persistently failing listener is fatal.
                    consecutive_errors += 1;
                    if self.shared.log {
                        eprintln!("plimd: accepting a connection: {error}");
                    }
                    if consecutive_errors >= 100 {
                        return Err(format!(
                            "accepting a connection failed {consecutive_errors} times in a row: {error}"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        for connection in connections {
            let _ = connection.join();
        }
        // Dropping the last `Shared` reference shuts the pool down and
        // drains any still-queued jobs (their requesters are gone, but the
        // cache inserts still happen before the drop completes).
        Ok(())
    }
}

/// Upper bound on one request line. `read_line` would otherwise grow its
/// buffer without limit for a client that streams bytes with no newline,
/// OOMing the daemon regardless of the artifact cache's byte budget.
const MAX_REQUEST_BYTES: u64 = 64 << 20;

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, addr: SocketAddr) {
    // Bound idle connections so shutdown can always join this thread.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut buffer = Vec::new();
    loop {
        buffer.clear();
        // Raw bytes, not read_line: a stray non-UTF-8 byte must produce a
        // diagnosable error response below, not an IO error that silently
        // drops the connection.
        match reader
            .by_ref()
            .take(MAX_REQUEST_BYTES)
            .read_until(b'\n', &mut buffer)
        {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        // After a shutdown ack elsewhere, stop serving this connection
        // too — otherwise one chatty client (requests every <60s) would
        // keep the joined daemon alive forever.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if buffer.len() as u64 >= MAX_REQUEST_BYTES && buffer.last() != Some(&b'\n') {
            // The limit cut the line short; the rest of the stream is
            // unframed garbage, so answer once and drop the connection.
            let mut encoded =
                Response::Error(format!("request exceeds {MAX_REQUEST_BYTES} bytes")).to_json();
            encoded.push('\n');
            let _ = writer
                .write_all(encoded.as_bytes())
                .and_then(|()| writer.flush());
            return;
        }
        let line = match std::str::from_utf8(&buffer) {
            Ok(line) => line,
            Err(_) => {
                let mut encoded =
                    Response::Error("request is not valid UTF-8".to_string()).to_json();
                encoded.push('\n');
                if writer
                    .write_all(encoded.as_bytes())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let clock = Instant::now();
        // Parse once; the op tag is remembered for logging so a
        // multi-megabyte compile request is never parsed twice.
        let parsed = Request::from_json(line);
        let op = match &parsed {
            Ok(Request::Compile(_)) => "compile",
            Ok(Request::Stats) => "stats",
            Ok(Request::Shutdown) => "shutdown",
            Err(_) => "invalid",
        };
        let response = match parsed {
            Ok(request) => handle_request(shared, request),
            Err(message) => Response::Error(message),
        };
        if shared.log {
            log_response(op, &response, clock.elapsed());
        }
        let mut encoded = response.to_json();
        encoded.push('\n');
        if writer
            .write_all(encoded.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if matches!(response, Response::Shutdown) {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag. A wildcard
            // bind reports the unspecified address, which is not
            // connectable everywhere — dial loopback in that case.
            let mut wake = addr;
            if wake.ip().is_unspecified() {
                wake.set_ip(match wake.ip() {
                    IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                    IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
                });
            }
            let _ = TcpStream::connect(wake);
            return;
        }
    }
}

fn log_response(op: &str, response: &Response, elapsed: Duration) {
    match response {
        Response::Compile(compile) => eprintln!(
            "plimd: {op} key={}… {} #I={} #R={} ({elapsed:.1?})",
            &compile.key[..12],
            if compile.cached { "hit" } else { "miss" },
            compile.instructions,
            compile.rams,
        ),
        Response::Error(message) => eprintln!("plimd: {op} error: {message} ({elapsed:.1?})"),
        _ => eprintln!("plimd: {op} ({elapsed:.1?})"),
    }
}

fn handle_request(shared: &Arc<Shared>, request: Request) -> Response {
    match request {
        Request::Shutdown => Response::Shutdown,
        Request::Stats => Response::Stats(gather_stats(shared)),
        Request::Compile(compile) => handle_compile(shared, compile),
    }
}

fn gather_stats(shared: &Shared) -> ServiceStats {
    let shards = (0..shared.shards())
        .map(|index| ShardStats {
            queue_depth: shared.pool.queue_depth(index),
            cache: shared.caches[index]
                .lock()
                .expect("cache lock poisoned")
                .stats(),
        })
        .collect();
    let targets = plim_compiler::backend::backends()
        .iter()
        .map(|backend| backend.name().to_string())
        .collect();
    ServiceStats { shards, targets }
}

fn handle_compile(shared: &Arc<Shared>, request: CompileRequest) -> Response {
    // Reject unknown artifact kinds before burning a compile on them.
    if !EMIT_KINDS.contains(&request.emit.as_str()) {
        return Response::Error(format!("unknown --emit `{}`", request.emit));
    }
    // L1: exact-text index. A byte-identical resubmission resolves its
    // structural digest without re-parsing the source.
    let text_key = CacheKey::new(
        fnv128(request.source.as_bytes()),
        fnv128(request.format.name().as_bytes()) as u64,
    );
    let indexed = shared
        .text_index
        .lock()
        .expect("index lock poisoned")
        .get(&text_key)
        .copied();
    let (digest, mig) = match indexed {
        Some(digest) => (digest, None),
        None => {
            let mig = match pipeline::parse_network(request.format, &request.source) {
                Ok(mig) => mig,
                Err(message) => return Response::Error(message),
            };
            let digest = structural_digest(&mig);
            shared
                .text_index
                .lock()
                .expect("index lock poisoned")
                .insert(text_key, digest, 64);
            (digest, Some(mig))
        }
    };
    let key = cache_key(digest, &request);
    let shard = key.shard(shared.shards());

    // Fast path on the IO thread: a warm request never queues. Only the
    // Arc is cloned under the lock; the response (which copies the
    // artifact body) is built after it is released, so concurrent warm
    // requests on one shard do not serialize on a multi-MB memcpy.
    let hit = {
        let mut cache = shared.caches[shard].lock().expect("cache lock poisoned");
        cache.get(&key).cloned()
    };
    if let Some(artifact) = hit {
        return compile_response(&key.hex(), true, &artifact);
    }
    // The artifact was evicted (or never compiled) — the graph is needed
    // after all.
    let mig = match mig {
        Some(mig) => mig,
        None => match pipeline::parse_network(request.format, &request.source) {
            Ok(mig) => mig,
            Err(message) => return Response::Error(message),
        },
    };

    let (sender, receiver) = mpsc::channel();
    let worker_shared = Arc::clone(shared);
    let submitted = shared.pool.submit(shard, move || {
        let response = compile_on_shard(&worker_shared, shard, &request, &mig, &key.hex(), key);
        let _ = sender.send(response);
    });
    if !submitted {
        return Response::Error("service is shutting down".to_string());
    }
    receiver
        .recv()
        .unwrap_or_else(|_| Response::Error("compile worker disappeared".to_string()))
}

fn compile_on_shard(
    shared: &Shared,
    shard: usize,
    request: &CompileRequest,
    mig: &mig::Mig,
    key_hex: &str,
    key: plim_compiler::cache::CacheKey,
) -> Response {
    // Same-shard requests are serialized by the pinned worker, so an
    // identical request queued behind the one that compiles lands here
    // after the insert: re-check before doing the work. The IO thread
    // already counted this lookup as a miss, so peek first and only count
    // a hit when the dedup actually pays off. As on the fast path, only
    // the Arc clone happens under the lock.
    let deduped = {
        let mut cache = shared.caches[shard].lock().expect("cache lock poisoned");
        if cache.peek(&key).is_some() {
            Some(cache.get(&key).cloned().expect("peeked entry is live"))
        } else {
            None
        }
    };
    if let Some(artifact) = deduped {
        return compile_response(key_hex, true, &artifact);
    }
    let artifacts = match pipeline::execute(mig, &request.spec) {
        Ok(result) => result,
        Err(message) => return Response::Error(message),
    };
    let output = match pipeline::emit(&request.emit, &artifacts) {
        Ok(output) => output,
        Err(message) => return Response::Error(message),
    };
    let stats = &artifacts.compilation.compiled.stats;
    let artifact = Arc::new(Artifact {
        instructions: stats.instructions as u64,
        rams: u64::from(stats.rams),
        max_cell_writes: stats.max_cell_writes,
        output,
    });
    let weight = artifact.weight();
    {
        let mut cache = shared.caches[shard].lock().expect("cache lock poisoned");
        if weight > cache.budget() {
            // The per-shard budget is cache_bytes / workers, so on a
            // many-core host a large listing can exceed it. insert()
            // would silently skip it; make the lost warm path visible.
            if shared.log {
                eprintln!(
                    "plimd: artifact of {weight} bytes exceeds the {}-byte shard budget; \
                     not cached (raise --cache-bytes)",
                    cache.budget()
                );
            }
        }
        cache.insert(key, Arc::clone(&artifact), weight);
    }
    compile_response(key_hex, false, &artifact)
}

fn compile_response(key_hex: &str, cached: bool, artifact: &Arc<Artifact>) -> Response {
    Response::Compile(CompileResponse {
        cached,
        key: key_hex.to_string(),
        instructions: artifact.instructions,
        rams: artifact.rams,
        max_cell_writes: artifact.max_cell_writes,
        output: artifact.output.clone(),
    })
}

/// Runs `plimc serve` / `plimd`: parses the serve flags, binds, prints the
/// listening line, and serves until shutdown.
///
/// # Errors
///
/// Returns a one-line user diagnostic (bad flag, unbindable address).
pub fn serve_cli(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig {
        log: true,
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--cache-bytes" => {
                config.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|_| "--cache-bytes needs a number".to_string())?;
            }
            "--quiet" => config.log = false,
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    let server = Server::bind(&config)?;
    let addr = server.local_addr()?;
    let workers = server.shared.shards();
    // Stdout is line-buffered, so this line is visible to a supervising
    // process (CI greps it for the port) as soon as the daemon is ready.
    println!(
        "plimd: listening on {addr} ({workers} workers, {} cache bytes)",
        {
            let per_shard = server.shared.caches[0]
                .lock()
                .expect("cache lock poisoned")
                .budget();
            per_shard * workers
        }
    );
    server.run()
}
