//! The `plimd` daemon: reactor front end, shard-pinned compile workers,
//! tiered result cache.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──► reactor thread (epoll/kqueue, edge-triggered)
//!                │  parse lines · answer warm hits · order responses
//!                ▼ submit(shard, job)
//!              WorkerPool (N pinned workers, one LRU shard each)
//!                │  parse · compile · verify · emit
//!                ▼ CompletionQueue.push + Waker.wake
//!              reactor thread (encode, flush in request order)
//! ```
//!
//! One thread runs the reactor: it accepts
//! connections, reads newline-delimited requests from non-blocking
//! sockets, and answers warm cache hits inline. Compile work never runs
//! on the reactor: a cold request is dispatched to the shard that owns
//! its cache key — one of N workers of a
//! [`plim_parallel::pool::WorkerPool`], each paired with its own
//! [`LruCache`] shard. Pinning a key range to one worker serializes
//! same-key requests, so a burst of identical submissions compiles once
//! and the rest are answered from the cache the first one filled.
//! Finished compiles flow back over a
//! [`CompletionQueue`] whose
//! notifier rings the reactor's [`Waker`].
//!
//! Connections pipeline: a client may write many requests before reading
//! a response, and responses always come back in request order. Each
//! connection's in-flight window is bounded (`max_pipeline`); past it the
//! reactor simply stops reading that socket, letting TCP push back on the
//! client until responses drain.
//!
//! ## Cache semantics
//!
//! The key is the canonical structural digest of the parsed graph
//! ([`mig::canon::structural_digest`]) plus the request-options
//! fingerprint. A hit returns the artifact stored by the first-seen
//! member of the key's equivalence class: byte-identical for repeats of
//! the same dump, and functionally equivalent (same logic, possibly a
//! different but equally valid instruction schedule) for dumps that only
//! differ in node order or Ω.I complement placement. Entries are evicted
//! least-recently-used once the configured byte budget is exceeded.
//!
//! With `--store DIR` the in-memory cache gains a persistent layer: every
//! compiled artifact is written through to an on-disk
//! [`ArtifactStore`], and an in-memory miss consults the store before
//! compiling — so a restarted daemon answers repeat requests warm. Store
//! files are self-verifying; a corrupt or truncated file is logged,
//! counted, and treated as a miss, never served.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mig::canon::structural_digest;
use plim_compiler::cache::{fnv128, CacheKey, LruCache};
use plim_compiler::store::{ArtifactStore, StoreLookup, StoredArtifact};
use plim_parallel::pool::WorkerPool;
use plim_parallel::queue::CompletionQueue;

use crate::pipeline::{self, EMIT_KINDS};
use crate::poller::Waker;
use crate::protocol::{
    cache_key, CompileRequest, CompileResponse, ErrorCode, Request, Response, ServiceStats,
    ShardStats, WireError,
};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads (= cache shards); 0 means one per hardware thread.
    pub threads: usize,
    /// Byte budget of the result cache, split evenly across shards. An
    /// artifact larger than `cache_bytes / threads` is never cached (the
    /// daemon logs when that happens) — on many-core hosts serving large
    /// circuits, raise the budget accordingly.
    pub cache_bytes: usize,
    /// Directory of the persistent artifact store; `None` disables
    /// persistence (in-memory cache only).
    pub store: Option<String>,
    /// Close a connection after this long without reads, writes, or
    /// in-flight requests.
    pub idle_timeout: Duration,
    /// Per-connection cap on in-flight pipelined requests; past it the
    /// reactor stops reading the socket until responses drain.
    pub max_pipeline: usize,
    /// Log one line per request to stderr.
    pub log: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7393".to_string(),
            threads: 0,
            cache_bytes: 64 << 20,
            store: None,
            idle_timeout: Duration::from_secs(60),
            max_pipeline: 128,
            log: false,
        }
    }
}

/// A finished compile flowing from a worker back to the reactor, tagged
/// with the connection and per-connection sequence number it answers.
pub(crate) struct Completion {
    pub(crate) conn: u64,
    pub(crate) seq: u64,
    pub(crate) response: Response,
}

pub(crate) struct Shared {
    pub(crate) pool: WorkerPool,
    pub(crate) caches: Vec<Mutex<LruCache<Arc<StoredArtifact>>>>,
    /// First-level index: `(fnv128(source), fnv128(format))` → the
    /// canonical structural digest of the parsed graph. A hit here skips
    /// the parser entirely for byte-identical resubmissions — under *any*
    /// options, since the mapping is option-independent (the full cache
    /// key is derived by adding the request fingerprint at lookup). The
    /// format belongs in the key: the same bytes under another format
    /// would parse differently or not at all. Artifacts themselves live
    /// in (and are accounted to) the sharded caches above.
    pub(crate) text_index: Mutex<LruCache<u128>>,
    pub(crate) store: Option<ArtifactStore>,
    pub(crate) completions: CompletionQueue<Completion>,
    pub(crate) waker: Waker,
    pub(crate) shutdown: AtomicBool,
    pub(crate) idle_timeout: Duration,
    pub(crate) max_pipeline: usize,
    pub(crate) log: bool,
}

impl Shared {
    pub(crate) fn shards(&self) -> usize {
        self.caches.len()
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("shards", &self.shards())
            .finish()
    }
}

/// A bound (but not yet running) compile service.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, opens the store (if configured), and spawns
    /// the worker pool.
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the address cannot be bound or the
    /// store directory cannot be created.
    pub fn bind(config: &ServerConfig) -> Result<Server, String> {
        // Populate the target registry before the first request can name a
        // `+target` spec suffix, and the equality-saturation hook before
        // the first `+egraph` spec compiles.
        plim_backends::install();
        plim_egraph::install();
        // Best-effort: the reactor holds one fd per connection, so a
        // default 1024-fd soft limit caps concurrency long before memory
        // does. Failure is not fatal — the daemon just accepts fewer.
        let _ = crate::poller::raise_nofile_limit(8192);
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
        let threads = if config.threads == 0 {
            plim_parallel::available_threads()
        } else {
            config.threads
        };
        let shard_budget = config.cache_bytes / threads.max(1);
        let caches = (0..threads.max(1))
            .map(|_| Mutex::new(LruCache::new(shard_budget)))
            .collect();
        let store = config.store.as_ref().map(ArtifactStore::open).transpose()?;
        let waker = Waker::new().map_err(|e| format!("creating the reactor waker: {e}"))?;
        let completions = CompletionQueue::new();
        // Workers push, then ring: by the time the reactor wakes, the
        // completion is already visible in the queue.
        let ring = waker.clone();
        completions.set_notify(move || ring.wake());
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                pool: WorkerPool::new(threads),
                caches,
                // ~16k text mappings; entries weigh a fixed 64 bytes.
                text_index: Mutex::new(LruCache::new(1 << 20)),
                store,
                completions,
                waker,
                shutdown: AtomicBool::new(false),
                idle_timeout: config.idle_timeout,
                max_pipeline: config.max_pipeline.max(1),
                log: config.log,
            }),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the socket address is unavailable.
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener
            .local_addr()
            .map_err(|e| format!("resolving the listen address: {e}"))
    }

    /// Runs the reactor until a `shutdown` request arrives, then drains:
    /// in-flight compiles are answered, buffers flushed, and queued jobs
    /// finish before this returns.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on reactor failures.
    pub fn run(self) -> Result<(), String> {
        crate::reactor::run(self.listener, self.shared)
        // Dropping the last `Shared` reference shuts the pool down and
        // drains any still-queued jobs (their requesters are gone, but the
        // cache inserts still happen before the drop completes).
    }
}

/// What the reactor should do with one decoded request line.
pub(crate) enum Disposition {
    /// Answer now.
    Ready(Response),
    /// A worker owns it; a [`Completion`] with this line's `(conn, seq)`
    /// will arrive on the queue.
    Dispatched,
    /// Answer now, then drain and exit.
    StartShutdown(Response),
}

/// The reactor-facing result of handling one request line.
pub(crate) struct LineOutcome {
    /// Protocol version the response must be encoded in.
    pub(crate) version: u64,
    /// Op tag for the request log.
    pub(crate) op: &'static str,
    pub(crate) disposition: Disposition,
}

/// Handles one request line on the reactor thread: decode, answer
/// stats/shutdown/warm hits inline, dispatch compile work to its shard.
pub(crate) fn handle_line(shared: &Arc<Shared>, conn: u64, seq: u64, line: &str) -> LineOutcome {
    let decoded = Request::decode(line);
    let version = decoded.version;
    match decoded.body {
        Err(error) => LineOutcome {
            version,
            op: "invalid",
            disposition: Disposition::Ready(Response::Error(error)),
        },
        Ok(Request::Stats) => LineOutcome {
            version,
            op: "stats",
            disposition: Disposition::Ready(Response::Stats(gather_stats(shared))),
        },
        Ok(Request::Shutdown) => LineOutcome {
            version,
            op: "shutdown",
            disposition: Disposition::StartShutdown(Response::Shutdown),
        },
        Ok(Request::Compile(request)) => LineOutcome {
            version,
            op: "compile",
            disposition: dispatch_compile(shared, conn, seq, request),
        },
    }
}

fn gather_stats(shared: &Shared) -> ServiceStats {
    let shards = (0..shared.shards())
        .map(|index| ShardStats {
            queue_depth: shared.pool.queue_depth(index),
            cache: shared.caches[index]
                .lock()
                .expect("cache lock poisoned")
                .stats(),
        })
        .collect();
    let targets = plim_compiler::backend::backends()
        .iter()
        .map(|backend| backend.name().to_string())
        .collect();
    ServiceStats {
        shards,
        targets,
        store: shared.store.as_ref().map(ArtifactStore::counters),
    }
}

fn text_key(request: &CompileRequest) -> CacheKey {
    CacheKey::new(
        fnv128(request.source.as_bytes()),
        fnv128(request.format.name().as_bytes()) as u64,
    )
}

/// Routes a compile request: warm in-memory hits are answered inline on
/// the reactor thread (no queueing); everything else goes to a worker.
fn dispatch_compile(
    shared: &Arc<Shared>,
    conn: u64,
    seq: u64,
    request: CompileRequest,
) -> Disposition {
    // Reject unknown artifact kinds before burning a compile on them.
    if !EMIT_KINDS.contains(&request.emit.as_str()) {
        return Disposition::Ready(Response::Error(WireError::new(
            ErrorCode::BadRequest,
            format!("unknown --emit `{}`", request.emit),
        )));
    }
    // L1: exact-text index. A byte-identical resubmission resolves its
    // structural digest without re-parsing the source.
    let indexed = shared
        .text_index
        .lock()
        .expect("index lock poisoned")
        .get(&text_key(&request))
        .copied();
    let (digest, shard) = match indexed {
        Some(digest) => {
            let key = cache_key(digest, &request);
            let shard = key.shard(shared.shards());
            // Fast path: a warm request never queues. Only the Arc is
            // cloned under the lock; the response (which copies the
            // artifact body) is built after it is released.
            let hit = {
                let mut cache = shared.caches[shard].lock().expect("cache lock poisoned");
                cache.get(&key).cloned()
            };
            if let Some(artifact) = hit {
                return Disposition::Ready(compile_response(&key.hex(), true, &artifact));
            }
            (Some(digest), shard)
        }
        // Unknown text: parsing is compile work and stays off the reactor
        // thread. A provisional shard keyed on the raw text serializes
        // identical cold submissions until the digest is known.
        None => (
            None,
            (fnv128(request.source.as_bytes()) % shared.shards() as u128) as usize,
        ),
    };
    let worker = Arc::clone(shared);
    let submitted = shared.pool.submit(shard, move || {
        run_compile_job(&worker, conn, seq, request, digest, shard);
    });
    if submitted {
        Disposition::Dispatched
    } else {
        Disposition::Ready(Response::Error(WireError::new(
            ErrorCode::ShuttingDown,
            "service is shutting down",
        )))
    }
}

/// First worker stage: resolve the digest (parsing if needed), then
/// compile on the shard that owns the full cache key — handing off when
/// that is a different shard, so same-key serialization always holds.
fn run_compile_job(
    shared: &Arc<Shared>,
    conn: u64,
    seq: u64,
    request: CompileRequest,
    digest: Option<u128>,
    current_shard: usize,
) {
    // With a known digest, the reactor already did (and counted) the
    // in-memory lookup; for cold text the first lookup happens on the
    // shard and must be counted there.
    let counted = digest.is_some();
    let (digest, mig) = match digest {
        Some(digest) => (digest, None),
        None => match pipeline::parse_network(request.format, &request.source) {
            Ok(mig) => {
                let digest = structural_digest(&mig);
                shared
                    .text_index
                    .lock()
                    .expect("index lock poisoned")
                    .insert(text_key(&request), digest, 64);
                (digest, Some(mig))
            }
            Err(message) => {
                complete(
                    shared,
                    conn,
                    seq,
                    Response::Error(WireError::new(ErrorCode::ParseError, message)),
                );
                return;
            }
        },
    };
    let key = cache_key(digest, &request);
    let owner = key.shard(shared.shards());
    if owner == current_shard {
        let response = compile_on_shard(shared, owner, &request, mig, key, counted);
        complete(shared, conn, seq, response);
        return;
    }
    let worker = Arc::clone(shared);
    let submitted = shared.pool.submit(owner, move || {
        let response = compile_on_shard(&worker, owner, &request, mig, key, counted);
        complete(&worker, conn, seq, response);
    });
    if !submitted {
        complete(
            shared,
            conn,
            seq,
            Response::Error(WireError::new(
                ErrorCode::ShuttingDown,
                "service is shutting down",
            )),
        );
    }
}

fn compile_on_shard(
    shared: &Shared,
    shard: usize,
    request: &CompileRequest,
    mig: Option<mig::Mig>,
    key: CacheKey,
    // Whether the reactor already counted an in-memory lookup for this
    // key; false for cold text, whose first lookup is counted here.
    counted: bool,
) -> Response {
    let key_hex = key.hex();
    // Same-shard requests are serialized by the pinned worker, so an
    // identical request queued behind the one that compiles lands here
    // after the insert: re-check before doing the work. The reactor
    // already counted its lookup as a miss, so peek first and only count
    // a hit when the dedup actually pays off (and count the miss here for
    // requests the reactor never looked up). As on the fast path, only
    // the Arc clone happens under the lock.
    let deduped = {
        let mut cache = shared.caches[shard].lock().expect("cache lock poisoned");
        if cache.peek(&key).is_some() {
            Some(cache.get(&key).cloned().expect("peeked entry is live"))
        } else {
            if !counted {
                let _ = cache.get(&key);
            }
            None
        }
    };
    if let Some(artifact) = deduped {
        return compile_response(&key_hex, true, &artifact);
    }
    // L2→L3: consult the persistent store before compiling. A verified
    // disk hit is promoted into the in-memory shard; a corrupt file is
    // logged and recompiled (the overwrite heals it).
    if let Some(store) = &shared.store {
        match store.load(&key) {
            StoreLookup::Hit(artifact) => {
                let artifact = Arc::new(artifact);
                insert_artifact(shared, shard, key, &artifact);
                return compile_response(&key_hex, true, &artifact);
            }
            StoreLookup::Corrupt(diagnostic) => {
                if shared.log {
                    eprintln!("plimd: store: {diagnostic}");
                }
            }
            StoreLookup::Miss => {}
        }
    }
    let mig = match mig {
        Some(mig) => mig,
        None => match pipeline::parse_network(request.format, &request.source) {
            Ok(mig) => mig,
            Err(message) => return Response::Error(WireError::new(ErrorCode::ParseError, message)),
        },
    };
    let artifacts = match pipeline::execute(&mig, &request.spec) {
        Ok(result) => result,
        // `execute` only fails verification; parse failures happen above.
        Err(message) => return Response::Error(WireError::new(ErrorCode::VerifyError, message)),
    };
    let output = match pipeline::emit(&request.emit, &artifacts) {
        Ok(output) => output,
        Err(message) => return Response::Error(WireError::new(ErrorCode::BadRequest, message)),
    };
    let stats = &artifacts.compilation.compiled.stats;
    let artifact = Arc::new(StoredArtifact {
        instructions: stats.instructions as u64,
        rams: u64::from(stats.rams),
        max_cell_writes: stats.max_cell_writes,
        output,
    });
    insert_artifact(shared, shard, key, &artifact);
    if let Some(store) = &shared.store {
        if let Err(message) = store.save(&key, &artifact) {
            // A failed write-through only costs warmth after a restart;
            // keep serving.
            if shared.log {
                eprintln!("plimd: store: {message}");
            }
        }
    }
    compile_response(&key_hex, false, &artifact)
}

fn insert_artifact(shared: &Shared, shard: usize, key: CacheKey, artifact: &Arc<StoredArtifact>) {
    let weight = artifact.weight();
    let mut cache = shared.caches[shard].lock().expect("cache lock poisoned");
    if weight > cache.budget() && shared.log {
        // The per-shard budget is cache_bytes / workers, so on a
        // many-core host a large listing can exceed it. insert()
        // would silently skip it; make the lost warm path visible.
        eprintln!(
            "plimd: artifact of {weight} bytes exceeds the {}-byte shard budget; \
             not cached (raise --cache-bytes)",
            cache.budget()
        );
    }
    cache.insert(key, Arc::clone(artifact), weight);
}

fn complete(shared: &Shared, conn: u64, seq: u64, response: Response) {
    shared.completions.push(Completion {
        conn,
        seq,
        response,
    });
}

fn compile_response(key_hex: &str, cached: bool, artifact: &Arc<StoredArtifact>) -> Response {
    Response::Compile(CompileResponse {
        cached,
        key: key_hex.to_string(),
        instructions: artifact.instructions,
        rams: artifact.rams,
        max_cell_writes: artifact.max_cell_writes,
        output: artifact.output.clone(),
    })
}

pub(crate) fn log_response(op: &str, response: &Response, elapsed: Duration) {
    match response {
        Response::Compile(compile) => eprintln!(
            "plimd: {op} key={}… {} #I={} #R={} ({elapsed:.1?})",
            &compile.key[..12],
            if compile.cached { "hit" } else { "miss" },
            compile.instructions,
            compile.rams,
        ),
        Response::Error(error) => {
            eprintln!("plimd: {op} error: {} ({elapsed:.1?})", error.message);
        }
        _ => eprintln!("plimd: {op} ({elapsed:.1?})"),
    }
}

/// Runs `plimc serve` / `plimd`: parses the serve flags, binds, prints the
/// listening line, and serves until shutdown.
///
/// # Errors
///
/// Returns a one-line user diagnostic (bad flag, unbindable address).
pub fn serve_cli(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig {
        log: true,
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
            }
            "--cache-bytes" => {
                config.cache_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|_| "--cache-bytes needs a number".to_string())?;
            }
            "--store" => config.store = Some(value("--store")?.clone()),
            "--idle-timeout" => {
                config.idle_timeout = Duration::from_secs(
                    value("--idle-timeout")?
                        .parse()
                        .map_err(|_| "--idle-timeout needs a number of seconds".to_string())?,
                );
            }
            "--max-pipeline" => {
                config.max_pipeline = value("--max-pipeline")?
                    .parse()
                    .map_err(|_| "--max-pipeline needs a number".to_string())?;
                if config.max_pipeline == 0 {
                    return Err("--max-pipeline must be at least 1".to_string());
                }
            }
            "--quiet" => config.log = false,
            other => return Err(format!("unknown serve option `{other}`")),
        }
    }
    let server = Server::bind(&config)?;
    let addr = server.local_addr()?;
    let workers = server.shared.shards();
    // Stdout is line-buffered, so this line is visible to a supervising
    // process (CI greps it for the port) as soon as the daemon is ready.
    println!(
        "plimd: listening on {addr} ({workers} workers, {} cache bytes)",
        {
            let per_shard = server.shared.caches[0]
                .lock()
                .expect("cache lock poisoned")
                .budget();
            per_shard * workers
        }
    );
    if let Some(store) = &server.shared.store {
        println!("plimd: persistent store at {}", store.root().display());
    }
    server.run()
}
