//! The one-call client used by `plimc request` and the throughput bench.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{Request, Response};

/// First retry delay of [`send_with`]; doubles per attempt up to
/// [`MAX_BACKOFF`].
const FIRST_BACKOFF: Duration = Duration::from_millis(100);
const MAX_BACKOFF: Duration = Duration::from_secs(2);

/// A persistent client connection (one TCP stream, many requests).
///
/// `plimc request` sends a single request per process, but the throughput
/// bench reuses one connection for a whole suite — connection setup would
/// otherwise dominate the warm-path measurement.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Connects to a running daemon, without any timeout.
    ///
    /// # Errors
    ///
    /// Returns the standard one-line `cannot connect to <addr>: <cause>`
    /// message when the connection cannot be opened (`plimc request`
    /// against a daemon that is not running prints it verbatim after the
    /// `plimc: ` prefix, instead of a raw `io::Error`).
    pub fn connect(addr: &str) -> Result<Connection, String> {
        Connection::connect_with(addr, None)
    }

    /// Connects to a running daemon. With a timeout, the limit applies to
    /// the connect *and* to every subsequent read and write on the
    /// connection.
    ///
    /// # Errors
    ///
    /// See [`Connection::connect`]; a timed-out connect reports the same
    /// `cannot connect to <addr>: <cause>` shape.
    pub fn connect_with(addr: &str, timeout: Option<Duration>) -> Result<Connection, String> {
        let stream = match timeout {
            None => {
                TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?
            }
            Some(limit) => {
                let candidates = addr
                    .to_socket_addrs()
                    .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                let mut last_error: Option<std::io::Error> = None;
                let mut connected = None;
                for candidate in candidates {
                    match TcpStream::connect_timeout(&candidate, limit) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(error) => last_error = Some(error),
                    }
                }
                match connected {
                    Some(stream) => stream,
                    None => {
                        let cause = last_error
                            .map(|e| e.to_string())
                            .unwrap_or_else(|| "address resolved to nothing".to_string());
                        return Err(format!("cannot connect to {addr}: {cause}"));
                    }
                }
            }
        };
        if timeout.is_some() {
            stream
                .set_read_timeout(timeout)
                .and_then(|()| stream.set_write_timeout(timeout))
                .map_err(|e| format!("setting the socket timeout: {e}"))?;
        }
        let write_half = stream
            .try_clone()
            .map_err(|e| format!("cloning the connection: {e}"))?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one request and reads its response line.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on IO failures or malformed responses.
    /// A server-side failure comes back as `Ok(Response::Error(..))`.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, String> {
        let mut line = request.to_json();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("sending the request: {e}"))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err("the server closed the connection".to_string()),
            Ok(_) => Response::from_json(&response),
            Err(e) => Err(format!("reading the response: {e}")),
        }
    }
}

/// Opens a connection, performs one round-trip, and closes it.
///
/// # Errors
///
/// See [`Connection::roundtrip`].
pub fn send(addr: &str, request: &Request) -> Result<Response, String> {
    send_with(addr, request, None, 0)
}

/// Like [`send`], with a per-operation timeout and connect retries.
///
/// Only the *connect* is retried (with exponential backoff: 100 ms
/// doubling to a 2 s cap): a request that reached the daemon is never
/// resent, so a slow compile cannot be duplicated by its own client.
/// `retries` is the number of re-attempts after the first (so `2` means
/// up to three connects).
///
/// # Errors
///
/// The last connect failure once the attempts are exhausted, or any
/// [`Connection::roundtrip`] failure.
pub fn send_with(
    addr: &str,
    request: &Request,
    timeout: Option<Duration>,
    retries: u32,
) -> Result<Response, String> {
    let mut backoff = FIRST_BACKOFF;
    let mut attempt = 0u32;
    loop {
        match Connection::connect_with(addr, timeout) {
            Ok(mut connection) => return connection.roundtrip(request),
            Err(error) => {
                if attempt >= retries {
                    return Err(error);
                }
                attempt += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
        }
    }
}
