//! The one-call client used by `plimc request` and the throughput bench.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use crate::protocol::{Request, Response};

/// A persistent client connection (one TCP stream, many requests).
///
/// `plimc request` sends a single request per process, but the throughput
/// bench reuses one connection for a whole suite — connection setup would
/// otherwise dominate the warm-path measurement.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Returns the standard one-line `cannot connect to <addr>: <cause>`
    /// message when the connection cannot be opened (`plimc request`
    /// against a daemon that is not running prints it verbatim after the
    /// `plimc: ` prefix, instead of a raw `io::Error`).
    pub fn connect(addr: &str) -> Result<Connection, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let write_half = stream
            .try_clone()
            .map_err(|e| format!("cloning the connection: {e}"))?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one request and reads its response line.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on IO failures or malformed responses.
    /// A server-side failure comes back as `Ok(Response::Error(..))`.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, String> {
        let mut line = request.to_json();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("sending the request: {e}"))?;
        let mut response = String::new();
        match self.reader.read_line(&mut response) {
            Ok(0) => Err("the server closed the connection".to_string()),
            Ok(_) => Response::from_json(&response),
            Err(e) => Err(format!("reading the response: {e}")),
        }
    }
}

/// Opens a connection, performs one round-trip, and closes it.
///
/// # Errors
///
/// See [`Connection::roundtrip`].
pub fn send(addr: &str, request: &Request) -> Result<Response, String> {
    Connection::connect(addr)?.roundtrip(request)
}
