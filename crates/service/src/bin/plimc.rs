//! `plimc` — the PLiM compiler command-line driver.
//!
//! Reads a logic network (MIG text format or ASCII AIGER), optimizes it for
//! the PLiM architecture, compiles it to RM3 instructions, verifies the
//! program against simulation, and emits the requested artifact. The same
//! pipeline is available as a long-running daemon via `plimc serve` (alias:
//! the `plimd` binary) and `plimc request`.
//!
//! ```text
//! plimc [OPTIONS] FILE        (FILE of `-` reads stdin)
//!
//!   --format mig|aag     input format (default: by extension, mig otherwise)
//!   --effort N           rewrite effort, 0 disables rewriting (default 4)
//!   --extended           use rewrite+majority-resynthesis (stronger)
//!   --rewrite arena|rebuild|egraph
//!                        rewrite engine (default: arena). `egraph`
//!                        saturates an e-graph under the MIG axioms and
//!                        keeps the extraction only when its compiled
//!                        cost beats the arena result
//!   --naive              disable candidate selection (Table 1 baseline)
//!   --schedule index|priority|lookahead
//!                        node scheduling order (default: priority)
//!   --alloc fifo|lifo|fresh|wear|binned
//!                        work-RRAM allocation strategy (default: fifo)
//!   -O0|-O1|-O2          IR pass-pipeline level (default: -O0, which is
//!                        byte-identical to the paper reproduction)
//!   --target rm3|ambit|magic
//!                        emission backend (default: rm3). Non-RM3 targets
//!                        print their native listing/stats; at -O1+ the
//!                        pass pipeline optimizes under the target's own
//!                        cost model
//!   --limit R            fail unless the program fits R work RRAMs
//!   --emit asm|listing|stats|dot|mig|ir
//!                        artifact to print (default: listing); `ir` dumps
//!                        the post-optimization IR with def/use annotations
//!   --no-verify          skip the simulation check
//!
//!   Binary AIGER (.aig) is parsed natively: the magic is sniffed from
//!   the payload, so `.aig` files work wherever `.aag` files do.
//!
//! plimc verify [compile OPTIONS] FILE
//!                             compile and prove the program equal to the
//!                             source network over the FULL input space
//!                             (up to 20 primary inputs). Exit codes: 0 the
//!                             proof holds, 1 a counterexample (or any
//!                             error), 2 the circuit is too wide for an
//!                             exhaustive proof — a refusal, not a disproof
//!
//! plimc lint [compile OPTIONS] [--json] [--deny LINT] [--allow LINT]
//!            [--doctor write-after-release] FILE
//!                             run the static analyzer over the compiled
//!                             artifact: event-stream lints, program-level
//!                             init discipline, and resource certification
//!                             (#I/#R/wear re-derived from the event stream
//!                             must match Rm3Stats). LINT is a code
//!                             (PA0001) or name (use-before-init); --deny
//!                             promotes to error, --allow suppresses.
//!                             --doctor corrupts the stream first, to prove
//!                             the analyzer catches the injected violation.
//!                             Exit 1 if any error-level finding survives
//!
//! plimc scenario [compile OPTIONS] [--patterns N] [--drift P]
//!                [--stuck ADDR:LEVEL] [--seed N] [--endurance N]
//!                [--noise P] [--max-invocations N] FILE
//!                             fault-injection and device-lifetime sweep
//!                             across all allocation strategies
//!
//! plimc serve [--addr HOST:PORT] [--threads N] [--cache-bytes N]
//!             [--store DIR] [--idle-timeout SECS] [--max-pipeline N] [--quiet]
//!                             run the compile service (default
//!                             127.0.0.1:7393; port 0 picks a free port,
//!                             printed on the listening line). --store
//!                             persists compiled artifacts on disk so a
//!                             restarted daemon serves repeats warm
//!
//! plimc request [--addr HOST:PORT] [--timeout SECS] [--retries N]
//!               [compile OPTIONS] FILE
//! plimc request [--addr HOST:PORT] [--timeout SECS] [--retries N]
//!               --stats | --shutdown
//!                             send one request to a running service and
//!                             print the artifact (or the stats JSON line).
//!                             --retries re-attempts the *connect* with
//!                             exponential backoff; a request that reached
//!                             the daemon is never resent
//!
//! plimc loadtest [--addr HOST:PORT] [--connections N] [--pipeline N]
//!                [--requests N]
//!                             hold N concurrent connections open against a
//!                             running service, each pipelining requests,
//!                             and byte-compare every response against the
//!                             offline pipeline. Prints throughput and
//!                             latency percentiles; exits 1 on any error,
//!                             mismatch, or missing response
//!
//! plimc targets               list the registered emission backends with
//!                             their native instruction sets and costs
//!
//! plimc dump CIRCUIT [--reduced]
//!                             print a Table 1 suite circuit as MIG text
//!
//! plimc bench [OPTIONS]       regenerate Table 1 via the batch pipeline
//!
//!   --reduced            build the small test-scale circuits (fast)
//!   --effort N           rewrite effort (default 4)
//!   --jobs N             cap worker threads (default: all cores)
//!   --serial             compile on one thread
//!   --json PATH          write the BENCH.json bench-gate artifact
//!
//! plimc bench-diff BASELINE CURRENT [--time-tolerance PCT | --no-time-gate]
//!                             diff two BENCH.json files; exit 1 on a
//!                             #I/#R regression, a missing circuit, or a
//!                             wall-clock slowdown beyond PCT % (default 25;
//!                             --no-time-gate reports timing as a note only,
//!                             for runs on a different machine than the
//!                             baseline's)
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use mig::Mig;
use plim_compiler::{
    AllocatorStrategy, CompilerOptions, OptLevel, RewriteMode, ScheduleOrder, Target,
};
use plim_service::pipeline::{self, CompileSpec, InputFormat};
use plim_service::protocol::{CompileRequest, Request, Response};
use plim_service::{client, server};

/// Default service address, shared by `serve` and `request`.
const DEFAULT_ADDR: &str = "127.0.0.1:7393";

/// A CLI failure: the diagnostic plus the process exit code it maps to.
///
/// Almost everything exits 1; `verify` reserves 2 for "the circuit is too
/// wide for an exhaustive proof" so scripts can tell a refusal from a
/// disproof.
struct Failure {
    message: String,
    code: u8,
}

impl From<String> for Failure {
    fn from(message: String) -> Self {
        Failure { message, code: 1 }
    }
}

struct Args {
    file: String,
    format: Option<String>,
    effort: usize,
    extended: bool,
    naive: bool,
    schedule: Option<ScheduleOrder>,
    alloc: Option<AllocatorStrategy>,
    opt: Option<OptLevel>,
    target: Option<Target>,
    rewrite: Option<RewriteMode>,
    limit: Option<u32>,
    emit: String,
    verify: bool,
}

impl Args {
    /// The compiler options this invocation asks for.
    fn options(&self) -> CompilerOptions {
        let mut options = if self.naive {
            CompilerOptions::naive()
        } else {
            CompilerOptions::new()
        };
        if let Some(schedule) = self.schedule {
            options = options.schedule(schedule);
        }
        if let Some(alloc) = self.alloc {
            options = options.allocator(alloc);
        }
        if let Some(opt) = self.opt {
            options = options.opt(opt);
        }
        if let Some(target) = self.target {
            options = options.target(target);
        }
        if let Some(rewrite) = self.rewrite {
            options = options.rewrite(rewrite);
        }
        options
    }

    fn spec(&self) -> CompileSpec {
        CompileSpec {
            effort: self.effort,
            extended: self.extended,
            options: self.options(),
            verify: self.verify,
        }
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        format: None,
        effort: 4,
        extended: false,
        naive: false,
        schedule: None,
        alloc: None,
        opt: None,
        target: None,
        rewrite: None,
        limit: None,
        emit: "listing".to_string(),
        verify: true,
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--format" => args.format = Some(value("--format")?),
            "--effort" => {
                args.effort = value("--effort")?
                    .parse()
                    .map_err(|_| "--effort needs a number".to_string())?;
            }
            "--extended" => args.extended = true,
            "--naive" => args.naive = true,
            "--schedule" => args.schedule = Some(ScheduleOrder::parse(&value("--schedule")?)?),
            "--alloc" => args.alloc = Some(AllocatorStrategy::parse(&value("--alloc")?)?),
            level if level.starts_with("-O") => {
                args.opt = Some(OptLevel::parse(&format!("o{}", &level[2..]))?);
            }
            "--target" => args.target = Some(Target::parse(&value("--target")?)?),
            "--rewrite" => args.rewrite = Some(RewriteMode::parse(&value("--rewrite")?)?),
            "--limit" => {
                args.limit = Some(
                    value("--limit")?
                        .parse()
                        .map_err(|_| "--limit needs a number".to_string())?,
                );
            }
            "--emit" => args.emit = value("--emit")?,
            "--no-verify" => args.verify = false,
            "--help" | "-h" => return Err("help".to_string()),
            _ if arg.starts_with('-') && arg != "-" => {
                return Err(format!("unknown option `{arg}`"))
            }
            _ if !args.file.is_empty() => {
                return Err(format!(
                    "multiple input files (`{}` and `{arg}`)",
                    args.file
                ))
            }
            _ => args.file = arg.clone(),
        }
    }
    if args.file.is_empty() {
        return Err("no input file (use `-` for stdin)".to_string());
    }
    if args.limit.is_some() && (args.schedule.is_some() || args.alloc.is_some()) {
        return Err(
            "--limit explores schedules/allocators itself; drop --schedule/--alloc".to_string(),
        );
    }
    Ok(args)
}

/// Reads the raw input (file or stdin), sniffs binary AIGER, and resolves
/// the input format. Shared by offline compilation and `plimc request`.
fn read_source(file: &str, format: &Option<String>) -> Result<(InputFormat, String), String> {
    // Validate the format name before touching the input: a typo like
    // `--format agg` must be diagnosed as such, not as whatever the
    // sniff/UTF-8 checks happen to hit first on a binary file.
    let forced = match format {
        Some(name) => Some(InputFormat::parse(name)?),
        None => None,
    };
    let bytes = if file == "-" {
        let mut buffer = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buffer
    } else {
        std::fs::read(file).map_err(|e| format!("reading {file}: {e}"))?
    };
    // Sniff the binary-AIGER magic unless the user explicitly forced a
    // non-AIGER format: the payload is not text, so the AIGER parser (or
    // the MIG parser the extension default falls through to) would produce
    // a baffling first-line error or a UTF-8 failure instead. Binary AIGER
    // is decoded here at the edge and re-serialized as MIG text, so the
    // String-based pipeline and wire protocol stay unchanged downstream.
    let forced_non_aiger = matches!(forced, Some(f) if f != InputFormat::Aag);
    if !forced_non_aiger && pipeline::is_binary_aiger(&bytes) {
        let network = mig::aiger::parse_binary_aiger(&bytes)
            .map_err(|e| format!("{file}: binary AIGER: {e}"))?;
        return Ok((InputFormat::Mig, mig::io::write_mig(&network)));
    }
    let text =
        String::from_utf8(bytes).map_err(|_| format!("{file}: input is not valid UTF-8 text"))?;
    Ok((forced.unwrap_or_else(|| InputFormat::from_path(file)), text))
}

fn read_input(args: &Args) -> Result<Mig, String> {
    let (format, text) = read_source(&args.file, &args.format)?;
    pipeline::parse_network(format, &text)
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    let input = read_input(&args)?;
    let spec = args.spec();

    let artifacts = match args.limit {
        Some(limit) => {
            let optimized = pipeline::optimize(&input, &spec);
            let compilation = plim_compiler::constrained::compile_with_ram_limit_at(
                &optimized,
                limit,
                spec.options.opt,
            )
            .map_err(|e| e.to_string())?;
            if args.verify {
                plim_compiler::verify::verify(&optimized, &compilation.compiled, 4, 0xDAC2016)
                    .map_err(|e| format!("verification: {e}"))?;
            }
            pipeline::Artifacts {
                optimized,
                compilation,
                target: spec.options.target,
            }
        }
        None => pipeline::execute(&input, &spec)?,
    };

    let output = pipeline::emit(&args.emit, &artifacts)?;
    print!("{output}");
    Ok(())
}

/// The `plimc verify` subcommand: compiles the input and proves the
/// program equal to the **raw** source network over the full input space
/// (so the proof covers rewriting and compilation end to end). The proof
/// executor follows `--target` through the scenario layer's dispatch: the
/// RM3 program runs on the bit-parallel PLiM machine, a non-RM3 artifact
/// through its backend's own executor.
///
/// Exit codes: 0 the proof holds, 1 a counterexample or any other error,
/// 2 the circuit exceeds the exhaustive-proof width limit — a refusal the
/// caller may fall back from (e.g. to sampled verification), distinct from
/// a disproof.
fn run_verify(argv: &[String]) -> Result<(), Failure> {
    let args = parse_args(argv)?;
    if args.limit.is_some() {
        return Err(
            "--limit is not supported by verify; compile first, then verify"
                .to_string()
                .into(),
        );
    }
    let input = read_input(&args)?;
    let spec = args.spec();
    let target = spec.options.target;
    let optimized = pipeline::optimize(&input, &spec);
    let compilation = plim_compiler::compile_full(&optimized, spec.options);
    plim_scenario::verify_exhaustive_for_target(target, &input, &compilation).map_err(|e| {
        Failure {
            code: match e {
                plim_compiler::verify::VerifyError::TooManyInputs { .. } => 2,
                _ => 1,
            },
            message: format!("verification: {e}"),
        }
    })?;
    let inputs = input.num_inputs();
    if target == Target::RM3 {
        println!(
            "verified: all {} outputs equal over all 2^{inputs} input patterns \
             ({} instructions, {} RAMs)",
            input.num_outputs(),
            compilation.compiled.stats.instructions,
            compilation.compiled.stats.rams,
        );
    } else {
        let cost = target.backend().cost(&compilation.ir);
        println!(
            "verified [{target}]: all {} outputs equal over all 2^{inputs} input patterns \
             ({} {target} ops, {} cells)",
            input.num_outputs(),
            cost.instructions,
            cost.footprint,
        );
    }
    Ok(())
}

/// The `plimc targets` subcommand: lists every registered emission backend
/// with its native instruction set and per-instruction costs — the offline
/// twin of the wire protocol's `targets` advertisement in `stats`.
fn run_targets(argv: &[String]) -> Result<(), String> {
    if let Some(arg) = argv.first() {
        return Err(format!("targets takes no arguments (got `{arg}`)"));
    }
    for backend in plim_compiler::backend::backends() {
        println!("{:<8} {}", backend.name(), backend.description());
        for info in backend.instruction_set() {
            println!(
                "    {:<8} cost {:<3} {}",
                info.mnemonic, info.cost, info.summary
            );
        }
    }
    Ok(())
}

/// The `plimc lint` subcommand: compiles the input and runs the full
/// static-analysis battery over the artifact — event-stream lints at the
/// check level matching `-O`, physical-program initialization discipline,
/// and resource certification (`#I`/`#R`/per-cell wear re-derived from the
/// event stream must equal the recorded `Rm3Stats`).
///
/// `--deny`/`--allow` adjust per-lint severities; `--doctor` corrupts the
/// event stream *before* analysis so CI can prove the gate actually fires.
/// Exits 1 when any error-level finding survives the configuration.
fn run_lint(argv: &[String]) -> Result<(), Failure> {
    use plim_analysis::{analyze_artifact, Lint, LintConfig, Report};

    let mut config = LintConfig::new();
    let mut json = false;
    let mut doctor: Option<String> = None;
    let mut compile_argv: Vec<String> = Vec::new();
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let lint = |name: &str, text: &str| -> Result<Lint, String> {
            Lint::from_code(text).ok_or_else(|| {
                format!(
                    "{name}: unknown lint `{text}` (expected a code like PA0001 \
                     or a name like use-before-init)"
                )
            })
        };
        match arg.as_str() {
            "--json" => json = true,
            "--deny" => config.deny(lint("--deny", value("--deny")?)?),
            "--allow" => config.allow(lint("--allow", value("--allow")?)?),
            "--doctor" => {
                let injection = value("--doctor")?;
                if injection != "write-after-release" {
                    return Err(format!(
                        "--doctor: unknown injection `{injection}` (expected write-after-release)"
                    )
                    .into());
                }
                doctor = Some(injection.clone());
            }
            _ => compile_argv.push(arg.clone()),
        }
    }

    let args = parse_args(&compile_argv)?;
    if args.limit.is_some() {
        return Err("--limit is not supported by lint".to_string().into());
    }
    let input = read_input(&args)?;
    let spec = args.spec();
    let optimized = pipeline::optimize(&input, &spec);
    let mut compilation = plim_compiler::compile_full(&optimized, spec.options);

    if doctor.is_some() {
        plim_analysis::doctor::inject_write_after_release(&mut compilation.ir)
            .ok_or_else(|| "--doctor: the program has no ops to corrupt".to_string())?;
    }

    let diags = analyze_artifact(&compilation, spec.options.opt);
    let report = Report::new(&args.file, diags, &config);
    if json {
        println!("{}", report.to_json().to_json());
    } else {
        println!("{report}");
    }
    if report.failing() {
        return Err(Failure {
            message: format!("lint: {} error-level finding(s)", report.errors()),
            code: 1,
        });
    }
    Ok(())
}

/// The `plimc scenario` subcommand: Monte-Carlo fault injection and
/// device-lifetime simulation of the compiled program, swept across every
/// work-RRAM allocation strategy. All numbers are a pure function of the
/// seed (reports are thread-count invariant).
fn run_scenario(argv: &[String]) -> Result<(), String> {
    use plim_scenario::{FaultScenario, LifetimeScenario};

    let mut fault = FaultScenario::default();
    let mut lifetime = LifetimeScenario::default();
    let mut compile_argv: Vec<String> = Vec::new();
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let number = |name: &str, text: &str| -> Result<u64, String> {
            text.parse()
                .map_err(|_| format!("{name} needs a number (got `{text}`)"))
        };
        let rate = |name: &str, text: &str| -> Result<f64, String> {
            text.parse::<f64>()
                .ok()
                .filter(|p| (0.0..=1.0).contains(p))
                .ok_or_else(|| format!("{name} needs a probability in [0, 1] (got `{text}`)"))
        };
        match arg.as_str() {
            "--patterns" => fault.patterns = number("--patterns", value("--patterns")?)?,
            "--drift" => {
                fault.model.drift_probability = rate("--drift", value("--drift")?)?;
            }
            "--stuck" => {
                let text = value("--stuck")?;
                let (addr, level) = match text.split_once(':') {
                    Some((addr, "0")) => (addr, false),
                    Some((addr, "1")) => (addr, true),
                    _ => return Err(format!("--stuck needs ADDR:0 or ADDR:1 (got `{text}`)")),
                };
                fault
                    .model
                    .stuck
                    .push((plim::RamAddr(number("--stuck", addr)? as u32), level));
            }
            "--seed" => {
                let seed = number("--seed", value("--seed")?)?;
                fault.seed = seed;
                lifetime.seed = seed;
            }
            "--endurance" => {
                lifetime.cell_endurance = number("--endurance", value("--endurance")?)?;
            }
            "--noise" => lifetime.write_noise = rate("--noise", value("--noise")?)?,
            "--max-invocations" => {
                lifetime.max_invocations =
                    number("--max-invocations", value("--max-invocations")?)?;
            }
            _ => compile_argv.push(arg.clone()),
        }
    }

    let args = parse_args(&compile_argv)?;
    if args.limit.is_some() {
        return Err("--limit is not supported by scenario".to_string());
    }
    let input = read_input(&args)?;
    let spec = args.spec();
    let optimized = pipeline::optimize(&input, &spec);

    let faults = plim_scenario::sweep_strategies(&optimized, spec.options, &fault)
        .map_err(|e| format!("fault sweep: {e}"))?;
    let lifetimes = plim_scenario::compare_strategies(
        &optimized,
        spec.options,
        &lifetime,
        plim_parallel::Parallelism::Auto,
    );

    let stuck = if fault.model.stuck.is_empty() {
        "none".to_string()
    } else {
        fault
            .model
            .stuck
            .iter()
            .map(|(addr, level)| format!("@{}:{}", addr.0, u8::from(*level)))
            .collect::<Vec<_>>()
            .join(",")
    };
    println!(
        "scenario: {} patterns, drift {}, stuck {stuck}, endurance {}, noise {}, seed {:#x}",
        fault.patterns,
        fault.model.drift_probability,
        lifetime.cell_endurance,
        lifetime.write_noise,
        fault.seed,
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>10}",
        "alloc", "error-rate", "bit-errors", "lifetime", "first-dead"
    );
    for ((strategy, report), (_, life)) in faults.iter().zip(&lifetimes) {
        println!(
            "{:<8} {:>12.6} {:>12.6} {:>14} {:>10}",
            strategy.name(),
            report.error_rate(),
            report.bit_error_rate(),
            life.invocations,
            life.first_dead_cell
                .map(|addr| format!("@{}", addr.0))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
    Ok(())
}

/// The `plimc request` subcommand: one round-trip against a running
/// `plimd`. Compile requests print the artifact exactly as the offline
/// pipeline would; `--stats` and `--shutdown` print the response JSON.
/// `--timeout` bounds the connect and every read/write; `--retries`
/// re-attempts the connect (only) with exponential backoff.
fn run_request(argv: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut stats = false;
    let mut shutdown = false;
    let mut timeout: Option<std::time::Duration> = None;
    let mut retries = 0u32;
    let mut compile_argv: Vec<String> = Vec::new();
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = iter.next().ok_or("--addr requires a value")?.clone(),
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            "--timeout" => {
                let text = iter.next().ok_or("--timeout requires a value")?;
                let seconds = text
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| {
                        format!("--timeout needs a positive number of seconds (got `{text}`)")
                    })?;
                timeout = Some(std::time::Duration::from_secs_f64(seconds));
            }
            "--retries" => {
                let text = iter.next().ok_or("--retries requires a value")?;
                retries = text
                    .parse()
                    .map_err(|_| format!("--retries needs a number (got `{text}`)"))?;
            }
            _ => compile_argv.push(arg.clone()),
        }
    }
    if stats || shutdown {
        if !compile_argv.is_empty() {
            return Err(format!(
                "--stats/--shutdown take no further arguments (got `{}`)",
                compile_argv[0]
            ));
        }
        let request = if stats {
            Request::Stats
        } else {
            Request::Shutdown
        };
        let response = client::send_with(&addr, &request, timeout, retries)?;
        return match response {
            Response::Error(error) => Err(error.message),
            other => {
                println!(
                    "{}",
                    other.to_json(plim_service::protocol::PROTOCOL_VERSION)
                );
                Ok(())
            }
        };
    }

    let args = parse_args(&compile_argv)?;
    if args.limit.is_some() {
        return Err("--limit is not supported over the service; run plimc offline".to_string());
    }
    let (format, source) = read_source(&args.file, &args.format)?;
    let request = Request::Compile(CompileRequest {
        format,
        source,
        spec: args.spec(),
        emit: args.emit,
    });
    match client::send_with(&addr, &request, timeout, retries)? {
        Response::Compile(compile) => {
            print!("{}", compile.output);
            Ok(())
        }
        Response::Error(error) => Err(error.message),
        other => Err(format!(
            "unexpected response: {}",
            other.to_json(plim_service::protocol::PROTOCOL_VERSION)
        )),
    }
}

/// The circuits `plimc loadtest` drives: small, dependency-free MIG texts
/// with distinct shapes, so concurrent traffic exercises several cache
/// keys at once. Embedded rather than pulled from the benchmark suite so
/// the subcommand works without the `suite` feature.
const LOADTEST_CIRCUITS: [(&str, &str); 3] = [
    ("maj3", "inputs a b c\nn = maj(a, b, c)\noutput f = n\n"),
    (
        "and-or",
        "inputs a b c d\nx = maj(0, a, b)\ny = maj(1, c, d)\nz = maj(0, x, y)\noutput f = z\n",
    ),
    (
        "chain",
        "inputs a b c d e\np = maj(a, b, c)\nq = maj(p, c, d)\nr = maj(q, d, e)\noutput f = r\n",
    ),
];

/// The `plimc loadtest` subcommand: drive a running daemon with many
/// concurrent pipelined connections and prove every served response is
/// byte-identical to the offline pipeline.
fn run_loadtest(argv: &[String]) -> Result<(), String> {
    use plim_service::loadtest::{self, Circuit, LoadtestConfig};

    let mut config = LoadtestConfig {
        addr: DEFAULT_ADDR.to_string(),
        ..LoadtestConfig::default()
    };
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let number = |name: &str, text: &str| -> Result<usize, String> {
            text.parse()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("{name} needs a positive number (got `{text}`)"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?.clone(),
            "--connections" => {
                config.connections = number("--connections", value("--connections")?)?;
            }
            "--pipeline" => config.pipeline = number("--pipeline", value("--pipeline")?)?,
            "--requests" => {
                config.requests_per_conn = number("--requests", value("--requests")?)?;
            }
            other => return Err(format!("unknown loadtest option `{other}`")),
        }
    }
    for (name, source) in LOADTEST_CIRCUITS {
        config.circuits.push(Circuit {
            name: name.to_string(),
            source: source.to_string(),
            expected: loadtest::offline_expected(source)?,
        });
    }
    let report = loadtest::run(&config)?;
    println!("{report}");
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "loadtest failed: {} errors, {} mismatches, {}/{} responses",
            report.errors, report.mismatches, report.responses, report.requests
        ))
    }
}

/// The `plimc dump` subcommand: prints a benchmark-suite circuit as MIG
/// text, for feeding the service (and the CI smoke job) real inputs.
#[cfg(feature = "suite")]
fn run_dump(argv: &[String]) -> Result<(), String> {
    use plim_benchmarks::suite::{self, Scale};

    let mut name: Option<&String> = None;
    let mut scale = Scale::Full;
    for arg in argv {
        match arg.as_str() {
            "--reduced" => scale = Scale::Reduced,
            _ if arg.starts_with('-') => return Err(format!("unknown dump option `{arg}`")),
            _ if name.is_some() => return Err(format!("multiple circuits (got `{arg}`)")),
            _ => name = Some(arg),
        }
    }
    let name = name.ok_or("dump needs a circuit name")?;
    let mig = suite::build(name, scale).ok_or_else(|| {
        format!(
            "unknown benchmark `{name}` (expected one of: {})",
            suite::ALL.join(", ")
        )
    })?;
    print!("{}", mig::io::write_mig(&mig));
    Ok(())
}

#[cfg(not(feature = "suite"))]
fn run_dump(_argv: &[String]) -> Result<(), String> {
    Err("`plimc dump` requires the `suite` feature (enabled by default)".to_string())
}

/// The `plimc bench` subcommand: regenerates Table 1 through the parallel
/// batch-compilation pipeline, optionally emitting the `BENCH.json`
/// bench-gate artifact.
#[cfg(feature = "suite")]
fn run_bench(args: &[String]) -> Result<(), String> {
    use plim_compiler::batch::{self, Circuit};
    use plim_parallel::Parallelism;

    let mut reduced = false;
    let mut effort = 4usize;
    let mut parallelism = Parallelism::Auto;
    let mut json: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--reduced" => reduced = true,
            "--serial" => parallelism = Parallelism::Serial,
            "--effort" => {
                effort = value("--effort")?
                    .parse()
                    .map_err(|_| "--effort needs a number".to_string())?;
            }
            "--jobs" => {
                parallelism = Parallelism::from_jobs(Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs needs a number".to_string())?,
                ));
            }
            "--json" => json = Some(value("--json")?.clone()),
            other => return Err(format!("unknown bench option `{other}`")),
        }
    }

    use plim_benchmarks::suite::{self, Scale};
    let scale = if reduced { Scale::Reduced } else { Scale::Full };
    let circuits: Vec<Circuit> = suite::ALL
        .iter()
        .map(|&name| Circuit::new(name, suite::build(name, scale).expect("known benchmark")))
        .collect();

    println!(
        "Table 1 via batch pipeline (scale: {}, rewrite effort: {effort})",
        if reduced { "reduced" } else { "full" }
    );
    println!("{}", batch::table_header());
    let mut run = batch::bench_suite(&circuits, effort, parallelism);
    // Fidelity columns are required fields of BENCH.json, measured from the
    // run's own compiled artifacts: the exhaustive equivalence proof at
    // -O0/-O1/-O2 (against the raw source MIG), the drift fault sweep, and
    // the ideal-device lifetime.
    plim_scenario::annotate_bench(
        &mut run,
        &circuits,
        &plim_scenario::FidelityConfig {
            parallelism,
            ..plim_scenario::FidelityConfig::default()
        },
    )
    .map_err(|e| format!("fidelity annotation: {e}"))?;
    // Per-target cost columns (ambit/magic ops and units), filled from the
    // run's own compiled IR by the backends crate.
    plim_backends::annotate_bench(&mut run);
    // Equality-saturation columns: the compiled cost of the e-graph
    // extraction at -O2, next to the arena result the gate compares it to.
    plim_egraph::annotate_bench(&mut run, &circuits, parallelism);
    for (index, row) in run.rows.iter().enumerate() {
        println!("{}   [{:.1?}]", batch::format_row(row), run.row_time(index));
    }
    println!("{}", "-".repeat(132));
    println!("{}", batch::format_row(&batch::totals(&run.rows)));
    println!();
    println!("batch: {}", run.report.summary());
    let verified = run
        .records
        .iter()
        .filter(|record| record.verified_exhaustive)
        .count();
    println!(
        "fidelity: {verified}/{} circuits verified exhaustively",
        run.records.len()
    );
    if let Some(path) = json {
        let document = plim_compiler::benchfile::to_json(&run.records);
        std::fs::write(&path, document).map_err(|e| format!("writing {path}: {e}"))?;
        println!("bench records written to {path}");
    }
    Ok(())
}

#[cfg(not(feature = "suite"))]
fn run_bench(_args: &[String]) -> Result<(), String> {
    Err("`plimc bench` requires the `suite` feature (enabled by default)".to_string())
}

/// The `plimc bench-diff` subcommand: the bench-regression gate. Exits
/// nonzero when the current run regresses `#I`/`#R`, loses a circuit, or
/// slows down beyond the tolerance.
fn run_bench_diff(args: &[String]) -> Result<(), String> {
    use plim_compiler::benchfile;

    let mut files: Vec<&String> = Vec::new();
    let mut tolerance = 25.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--time-tolerance" => {
                tolerance = iter
                    .next()
                    .ok_or("--time-tolerance requires a value")?
                    .parse()
                    .map_err(|_| "--time-tolerance needs a number (percent)".to_string())?;
            }
            // Timing becomes a note: the right mode when the current run's
            // machine differs from the baseline's (e.g. hosted CI runners
            // diffing a dev-machine baseline), where even a wide tolerance
            // flakes on millisecond-scale totals.
            "--no-time-gate" => tolerance = f64::INFINITY,
            _ if arg.starts_with('-') => return Err(format!("unknown bench-diff option `{arg}`")),
            _ => files.push(arg),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        return Err("bench-diff needs exactly two files: BASELINE CURRENT".to_string());
    };
    let read = |path: &String| -> Result<Vec<benchfile::BenchRecord>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        // benchfile errors are one-liners like `missing field 'rams'
        // (circuit "adder")`; prefixing the file name makes the final
        // diagnostic `plimc: BENCH.json: missing field 'rams' …`.
        benchfile::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let report = benchfile::gate(&baseline, &current, tolerance / 100.0);
    for note in &report.notes {
        println!("note: {note}");
    }
    for regression in &report.regressions {
        println!("REGRESSION: {regression}");
    }
    if report.passed() {
        let time_rule = if tolerance.is_finite() {
            format!("time tolerance +{tolerance:.0} %")
        } else {
            "time gate off".to_string()
        };
        println!("bench gate: OK ({} circuits, {time_rule})", baseline.len());
        Ok(())
    } else {
        Err(format!(
            "bench gate failed with {} regression(s) against {baseline_path}",
            report.regressions.len()
        ))
    }
}

fn main() -> ExitCode {
    // Register the non-RM3 emission backends before any `--target` or
    // `+target` spec is parsed against the registry, and the
    // equality-saturation hook before any `--rewrite egraph` job runs.
    plim_backends::install();
    plim_egraph::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), Failure> = match args.first().map(String::as_str) {
        Some("bench") => run_bench(&args[1..]).map_err(Failure::from),
        Some("bench-diff") => run_bench_diff(&args[1..]).map_err(Failure::from),
        Some("serve") => server::serve_cli(&args[1..]).map_err(Failure::from),
        Some("request") => run_request(&args[1..]).map_err(Failure::from),
        Some("loadtest") => run_loadtest(&args[1..]).map_err(Failure::from),
        Some("verify") => run_verify(&args[1..]),
        Some("lint") => run_lint(&args[1..]),
        Some("scenario") => run_scenario(&args[1..]).map_err(Failure::from),
        Some("targets") => run_targets(&args[1..]).map_err(Failure::from),
        Some("dump") => run_dump(&args[1..]).map_err(Failure::from),
        _ => run(&args).map_err(Failure::from),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) if failure.message == "help" => {
            eprintln!("usage: plimc [--format mig|aag] [--effort N] [--extended] [--naive]");
            eprintln!("             [--schedule index|priority|lookahead] [--alloc fifo|lifo|fresh|wear|binned]");
            eprintln!("             [-O0|-O1|-O2] [--target rm3|ambit|magic] [--rewrite arena|rebuild|egraph]");
            eprintln!(
                "             [--limit R] [--emit asm|listing|stats|dot|mig|ir] [--no-verify] FILE"
            );
            eprintln!(
                "       (binary AIGER .aig is parsed natively; no aigtoaig conversion needed)"
            );
            eprintln!("       plimc verify [compile options] FILE");
            eprintln!("             (exit 0: proven; 1: disproof/error; 2: too wide for an exhaustive proof)");
            eprintln!("       plimc lint [compile options] [--json] [--deny LINT] [--allow LINT]");
            eprintln!("                  [--doctor write-after-release] FILE");
            eprintln!(
                "       plimc scenario [compile options] [--patterns N] [--drift P] [--stuck ADDR:LEVEL]"
            );
            eprintln!(
                "                      [--seed N] [--endurance N] [--noise P] [--max-invocations N] FILE"
            );
            eprintln!(
                "       plimc serve [--addr HOST:PORT] [--threads N] [--cache-bytes N] [--store DIR]"
            );
            eprintln!("                   [--idle-timeout SECS] [--max-pipeline N] [--quiet]");
            eprintln!(
                "       plimc request [--addr HOST:PORT] [--timeout SECS] [--retries N] [compile options] FILE"
            );
            eprintln!(
                "       plimc request [--addr HOST:PORT] [--timeout SECS] [--retries N] --stats | --shutdown"
            );
            eprintln!(
                "       plimc loadtest [--addr HOST:PORT] [--connections N] [--pipeline N] [--requests N]"
            );
            eprintln!("       plimc targets");
            eprintln!("       plimc dump CIRCUIT [--reduced]");
            eprintln!(
                "       plimc bench [--reduced] [--effort N] [--jobs N] [--serial] [--json PATH]"
            );
            eprintln!("       plimc bench-diff BASELINE CURRENT [--time-tolerance PCT]");
            ExitCode::SUCCESS
        }
        Err(failure) => {
            eprintln!("plimc: {}", failure.message);
            ExitCode::from(failure.code)
        }
    }
}
