//! `plimd` — the standalone compile-service daemon.
//!
//! Equivalent to `plimc serve`; provided as its own binary so deployments
//! can ship the daemon without the full CLI surface.
//!
//! ```text
//! plimd [--addr HOST:PORT] [--threads N] [--cache-bytes N]
//!       [--store DIR] [--idle-timeout SECS] [--max-pipeline N] [--quiet]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match plim_service::server::serve_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("plimd: {message}");
            ExitCode::FAILURE
        }
    }
}
