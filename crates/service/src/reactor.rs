//! The daemon's event loop: one thread, thousands of connections.
//!
//! Everything socket-shaped happens here, on a single thread, driven by
//! the edge-triggered [`Poller`](crate::poller::Poller):
//!
//! * **Accepting.** The listener is non-blocking; each readable edge is
//!   drained to `WouldBlock`. Connections live in a slab indexed by their
//!   poller token; a slot freed mid-batch is not reused until the batch
//!   ends, so a stale event can never reach a new connection.
//! * **Reading and framing.** Sockets are read in chunks into a
//!   per-connection buffer and split on newlines; each complete line is
//!   handled by [`server::handle_line`](crate::server). Warm cache hits,
//!   stats, and malformed requests are answered inline; compile work is
//!   dispatched to the worker shards and a `Waiting` placeholder keeps
//!   its place in the response queue.
//! * **Pipelining with ordered responses.** The per-connection `pending`
//!   queue holds one entry per in-flight request, in arrival order.
//!   Responses are flushed strictly from the front, so a fast compile
//!   queued behind a slow one waits — bytes on the wire always match
//!   request order.
//! * **Backpressure.** Past `max_pipeline` in-flight requests the
//!   reactor simply stops reading the socket (no re-registration — the
//!   interest set never changes). The kernel's receive buffer fills and
//!   TCP pushes back on the client; reading resumes as responses drain.
//! * **Completions.** Workers push finished compiles onto the
//!   [`CompletionQueue`](plim_parallel::queue::CompletionQueue) and ring
//!   the self-pipe [`Waker`](crate::poller::Waker); the reactor drains
//!   the queue every iteration and resolves each completion's `(conn,
//!   seq)` placeholder.
//! * **Timeouts and drain.** The poll loop ticks at least every 250 ms
//!   to sweep idle connections. A `shutdown` request stops accepting,
//!   stops reading, answers everything in flight, flushes, and closes —
//!   with a hard deadline so one dead peer cannot hold the daemon open.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::poller::{Event, Interest, Poller};
use crate::protocol::{ErrorCode, Response, WireError};
use crate::server::{handle_line, log_response, Disposition, Shared};

/// Upper bound on one request line. Without it a client that streams
/// bytes with no newline would grow the read buffer without limit,
/// OOMing the daemon regardless of the artifact cache's byte budget.
pub(crate) const MAX_REQUEST_BYTES: usize = 64 << 20;

const LISTENER: u64 = 0;
const WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;
/// Poll tick: the idle sweep and drain-deadline granularity.
const TICK: Duration = Duration::from_millis(250);
/// How long a drain waits for in-flight work and unflushed bytes.
const DRAIN_GRACE: Duration = Duration::from_secs(10);
const READ_CHUNK: usize = 64 << 10;

/// One slot of a connection's ordered response queue.
enum Pending {
    /// Encoded response bytes (newline included), ready to flush.
    Ready(Vec<u8>),
    /// A dispatched compile; its completion carries the same `seq`.
    Waiting {
        seq: u64,
        version: u64,
        op: &'static str,
        started: Instant,
    },
}

struct Conn {
    /// Stable identity (tokens/slots are reused; ids never are).
    id: u64,
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Prefix of `read_buf` already scanned for a newline.
    scanned: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    pending: VecDeque<Pending>,
    next_seq: u64,
    last_activity: Instant,
    /// Read side hit EOF; serve what's buffered, then close.
    peer_closed: bool,
    /// Stop parsing; close once `pending` and `write_buf` drain.
    closing: bool,
    /// Reading suspended by backpressure.
    paused: bool,
    /// A readable edge arrived while paused; re-read on resume.
    read_ready: bool,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.write_pos == self.write_buf.len()
    }
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    /// Slots safe to reuse (freed in an earlier batch).
    free: Vec<usize>,
    /// Slots freed in the current batch; promoted to `free` at batch end
    /// so stale events in this batch cannot hit a fresh connection.
    freed: Vec<usize>,
    by_id: HashMap<u64, usize>,
    next_conn_id: u64,
    live: usize,
    events: Vec<Event>,
    draining: bool,
    drain_deadline: Option<Instant>,
    last_sweep: Instant,
}

/// Runs the event loop until shutdown completes.
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) -> Result<(), String> {
    let poller = Poller::new().map_err(|e| format!("creating the event poller: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("unblocking the listener: {e}"))?;
    poller
        .register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
        .map_err(|e| format!("registering the listener: {e}"))?;
    poller
        .register(shared.waker.read_fd(), WAKER, Interest::READABLE)
        .map_err(|e| format!("registering the waker: {e}"))?;
    let mut reactor = Reactor {
        poller,
        listener,
        shared,
        conns: Vec::new(),
        free: Vec::new(),
        freed: Vec::new(),
        by_id: HashMap::new(),
        next_conn_id: 0,
        live: 0,
        events: Vec::new(),
        draining: false,
        drain_deadline: None,
        last_sweep: Instant::now(),
    };
    reactor.run()
}

impl Reactor {
    fn run(&mut self) -> Result<(), String> {
        loop {
            let mut events = std::mem::take(&mut self.events);
            self.poller
                .wait(&mut events, Some(TICK))
                .map_err(|e| format!("polling for events: {e}"))?;
            for event in &events {
                match event.token {
                    LISTENER => self.accept_all(),
                    WAKER => self.shared.waker.drain(),
                    token => {
                        let slot = (token - TOKEN_BASE) as usize;
                        if slot >= self.conns.len() || self.conns[slot].is_none() {
                            continue; // stale event for a closed connection
                        }
                        if event.readable {
                            self.on_readable(slot);
                        }
                        self.pump(slot);
                    }
                }
            }
            self.events = events;
            self.deliver_completions();
            if self.shared.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.start_drain();
            }
            self.sweep_idle();
            // Only now may slots freed during this batch be reused.
            self.free.append(&mut self.freed);
            if self.draining {
                if self.live == 0 {
                    return Ok(());
                }
                if self
                    .drain_deadline
                    .is_some_and(|deadline| Instant::now() >= deadline)
                {
                    for slot in 0..self.conns.len() {
                        if self.conns[slot].is_some() {
                            self.close(slot);
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.draining {
                        continue; // accept-and-drop: the fd edge must drain
                    }
                    self.add_conn(stream);
                }
                Err(error) if error.kind() == ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                Err(error) => {
                    // Per-connection accept failures (ECONNABORTED, a
                    // transient EMFILE burst) must not kill the daemon;
                    // the next readable edge retries.
                    if self.shared.log {
                        eprintln!("plimd: accepting a connection: {error}");
                    }
                    return;
                }
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Pipelined request/response lines are latency-bound, not
        // bandwidth-bound; Nagle only hurts here.
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        let token = slot as u64 + TOKEN_BASE;
        if let Err(error) = self
            .poller
            .register(stream.as_raw_fd(), token, Interest::BOTH)
        {
            if self.shared.log {
                eprintln!("plimd: registering a connection: {error}");
            }
            self.free.push(slot);
            return;
        }
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        self.by_id.insert(id, slot);
        self.conns[slot] = Some(Conn {
            id,
            stream,
            read_buf: Vec::new(),
            scanned: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            pending: VecDeque::new(),
            next_seq: 0,
            last_activity: Instant::now(),
            peer_closed: false,
            closing: false,
            paused: false,
            read_ready: false,
        });
        self.live += 1;
        // The peer may have sent bytes between accept and register; an
        // edge-triggered poller would report that readiness, but reading
        // now costs one harmless WouldBlock and closes the race for sure.
        self.on_readable(slot);
        self.pump(slot);
    }

    fn close(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.by_id.remove(&conn.id);
        self.freed.push(slot);
        self.live -= 1;
        // `conn.stream` drops here, closing the fd after deregistration.
    }

    /// Reads until `WouldBlock`, parsing after every chunk so
    /// backpressure can stop the reads mid-stream.
    fn on_readable(&mut self, slot: usize) {
        let mut chunk = vec![0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.paused || conn.closing {
                conn.read_ready = true;
                return;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    self.parse_lines(slot);
                    self.maybe_close(slot);
                    return;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    self.parse_lines(slot);
                }
                Err(error) if error.kind() == ErrorKind::WouldBlock => return,
                Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// Splits buffered bytes into lines and handles each; returns whether
    /// any request was consumed.
    fn parse_lines(&mut self, slot: usize) -> bool {
        let mut progressed = false;
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return progressed;
            };
            if conn.closing || self.draining {
                return progressed;
            }
            if conn.pending.len() >= self.shared.max_pipeline {
                conn.paused = true;
                return progressed;
            }
            let position = conn.read_buf[conn.scanned..]
                .iter()
                .position(|&byte| byte == b'\n');
            let line = match position {
                Some(offset) => {
                    let end = conn.scanned + offset;
                    let line: Vec<u8> = conn.read_buf.drain(..=end).collect();
                    conn.scanned = 0;
                    line
                }
                None => {
                    conn.scanned = conn.read_buf.len();
                    if conn.read_buf.len() > MAX_REQUEST_BYTES {
                        // The rest of the stream is unframed garbage:
                        // answer once and drop the connection.
                        conn.read_buf = Vec::new();
                        conn.scanned = 0;
                        self.push_error(
                            slot,
                            1,
                            ErrorCode::TooLarge,
                            format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                        );
                        if let Some(conn) = self.conns[slot].as_mut() {
                            conn.closing = true;
                        }
                        return true;
                    }
                    if conn.peer_closed && !conn.read_buf.is_empty() {
                        // EOF with an unterminated final line: treat it as
                        // a request (matching the blocking server's
                        // read_until behavior).
                        let line = std::mem::take(&mut conn.read_buf);
                        conn.scanned = 0;
                        self.handle_raw_line(slot, &line);
                        progressed = true;
                        continue;
                    }
                    return progressed;
                }
            };
            self.handle_raw_line(slot, &line);
            progressed = true;
        }
    }

    fn handle_raw_line(&mut self, slot: usize, line: &[u8]) {
        let Ok(text) = std::str::from_utf8(line) else {
            // A stray non-UTF-8 byte gets a diagnosable error response,
            // not a dropped connection. Version 1: binary garbage carries
            // no version marker.
            self.push_error(slot, 1, ErrorCode::BadRequest, "request is not valid UTF-8");
            return;
        };
        if text.trim().is_empty() {
            return;
        }
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let conn_id = conn.id;
        let seq = conn.next_seq;
        conn.next_seq += 1;
        let started = Instant::now();
        let outcome = handle_line(&self.shared, conn_id, seq, text);
        match outcome.disposition {
            Disposition::Ready(response) => {
                if self.shared.log {
                    log_response(outcome.op, &response, started.elapsed());
                }
                self.push_ready(slot, outcome.version, &response);
            }
            Disposition::Dispatched => {
                if let Some(conn) = self.conns[slot].as_mut() {
                    conn.pending.push_back(Pending::Waiting {
                        seq,
                        version: outcome.version,
                        op: outcome.op,
                        started,
                    });
                }
            }
            Disposition::StartShutdown(response) => {
                if self.shared.log {
                    log_response(outcome.op, &response, started.elapsed());
                }
                self.push_ready(slot, outcome.version, &response);
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
        }
    }

    fn push_ready(&mut self, slot: usize, version: u64, response: &Response) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let mut encoded = response.to_json(version);
        encoded.push('\n');
        conn.pending.push_back(Pending::Ready(encoded.into_bytes()));
    }

    fn push_error(
        &mut self,
        slot: usize,
        version: u64,
        code: ErrorCode,
        message: impl Into<String>,
    ) {
        let response = Response::Error(WireError::new(code, message));
        if self.shared.log {
            log_response("invalid", &response, Duration::ZERO);
        }
        self.push_ready(slot, version, &response);
    }

    /// Resolves finished compiles into their `Waiting` placeholders.
    fn deliver_completions(&mut self) {
        for completion in self.shared.completions.drain() {
            let Some(&slot) = self.by_id.get(&completion.conn) else {
                continue; // the requester hung up; drop the result
            };
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            let mut resolved = false;
            for pending in &mut conn.pending {
                if let Pending::Waiting {
                    seq,
                    version,
                    op,
                    started,
                } = pending
                {
                    if *seq == completion.seq {
                        if self.shared.log {
                            log_response(op, &completion.response, started.elapsed());
                        }
                        let mut encoded = completion.response.to_json(*version);
                        encoded.push('\n');
                        *pending = Pending::Ready(encoded.into_bytes());
                        resolved = true;
                        break;
                    }
                }
            }
            if resolved {
                conn.last_activity = Instant::now();
                self.pump(slot);
            }
        }
    }

    /// Drives one connection until quiescent: flush what's flushable,
    /// resume a paused reader when the window has room, parse what's
    /// buffered, and close when both sides are done.
    fn pump(&mut self, slot: usize) {
        loop {
            let mut progressed = self.flush(slot);
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.paused && !conn.closing && conn.pending.len() < self.shared.max_pipeline {
                conn.paused = false;
                progressed = true;
            }
            if !conn.paused && !conn.closing {
                progressed |= self.parse_lines(slot);
                if let Some(conn) = self.conns[slot].as_mut() {
                    if conn.read_ready && !conn.paused && !conn.closing {
                        conn.read_ready = false;
                        self.on_readable(slot);
                        progressed = true;
                    }
                }
            }
            if self.maybe_close(slot) || !progressed {
                return;
            }
        }
    }

    /// Moves ready responses into the write buffer (strictly from the
    /// queue front — response order is request order) and writes as much
    /// as the socket accepts.
    fn flush(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns[slot].as_mut() else {
            return false;
        };
        let mut progressed = false;
        while matches!(conn.pending.front(), Some(Pending::Ready(_))) {
            let Some(Pending::Ready(bytes)) = conn.pending.pop_front() else {
                unreachable!("front was just matched as Ready");
            };
            conn.write_buf.extend_from_slice(&bytes);
            progressed = true;
        }
        let mut dead = false;
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    conn.last_activity = Instant::now();
                    progressed = true;
                }
                Err(error) if error.kind() == ErrorKind::WouldBlock => break,
                Err(error) if error.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.close(slot);
            return true;
        }
        if conn.flushed() && !conn.write_buf.is_empty() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }
        progressed
    }

    /// Closes the connection when there is nothing left to say: the peer
    /// is gone (or we are closing) and no responses are owed or buffered.
    fn maybe_close(&mut self, slot: usize) -> bool {
        let Some(conn) = self.conns[slot].as_ref() else {
            return true;
        };
        let done_reading = conn.peer_closed && conn.read_buf.is_empty();
        if (conn.closing || done_reading) && conn.pending.is_empty() && conn.flushed() {
            self.close(slot);
            return true;
        }
        false
    }

    fn sweep_idle(&mut self) {
        let now = Instant::now();
        if now.duration_since(self.last_sweep) < TICK || self.draining {
            return;
        }
        self.last_sweep = now;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            // A connection with work in flight is not idle, no matter how
            // long the compile takes.
            if conn.pending.is_empty()
                && conn.flushed()
                && now.duration_since(conn.last_activity) >= self.shared.idle_timeout
            {
                self.close(slot);
            }
        }
    }

    /// Enters the drain: stop accepting, stop reading, answer what is in
    /// flight, flush, close.
    fn start_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        let _ = self.poller.deregister(self.listener.as_raw_fd());
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns[slot].as_mut() {
                conn.closing = true;
                self.pump(slot);
            }
        }
    }
}
