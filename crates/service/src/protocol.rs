//! The `plimd` wire protocol: newline-delimited JSON, versioned (v2).
//!
//! Framing: the client writes one JSON object per line; the server answers
//! each with one JSON object line, in request order (the server pipelines
//! — many requests may be in flight per connection, responses never
//! reorder). String escaping (via [`plim_compiler::json`]) guarantees
//! encoded documents never contain a raw newline, so multi-line circuit
//! sources travel safely inside one frame.
//!
//! ## Versioning
//!
//! Requests carry `"v":2`; a request without a `v` field is a protocol-v1
//! request from an older client. Success responses are identical in both
//! versions. *Error* responses differ: v2 errors are structured objects
//! with a machine-readable code, v1 errors remain flat strings so old
//! clients keep parsing them:
//!
//! ```text
//! v2 → {"ok":false,"error":{"code":"parse_error","message":"mig: …"}}
//! v1 → {"ok":false,"error":"mig: …"}
//! ```
//!
//! Unknown request fields are ignored (which is what lets a v2 client talk
//! to a v1 daemon), and a version this daemon does not speak is answered
//! with code `unsupported_version`. The error codes are enumerated by
//! [`ErrorCode`]; clients must treat unknown codes as opaque failures.
//!
//! ## Requests
//!
//! ```text
//! {"v":2,"op":"compile","format":"mig"|"aag","source":"…",
//!  "effort":4,"extended":false,"options":"priority+smart+fifo+o0",
//!  "emit":"listing","verify":true}
//! {"v":2,"op":"stats"}
//! {"v":2,"op":"shutdown"}
//! ```
//!
//! Only `source` is required for `compile`; every other field has the
//! offline `plimc` default. The `options` spec carries every compiler
//! option including the `-O` level and the emission target (older three-
//! and four-part specs without them are accepted and mean `o0` / `rm3`);
//! because the cache key is derived from this exact spelling, two requests
//! differing only in `-O` — or only in target — can never share a cache
//! entry. The protocol version is deliberately *not* part of the cache
//! key: v1 and v2 spellings of the same request share one artifact.
//!
//! ## Responses
//!
//! Responses carry `"ok":true` plus op-specific fields, or `"ok":false`
//! with the version-dependent `error` shape above. A `stats` response
//! advertises the daemon's registered emission targets in a `targets`
//! array (registry order, `rm3` first) and — when the daemon runs with
//! `--store` — the persistent store's counters in a `store` object.

use plim_compiler::cache::{fnv128, CacheKey, CacheStats};
use plim_compiler::json::Value;
use plim_compiler::store::StoreCounters;
use plim_compiler::CompilerOptions;

use crate::pipeline::{CompileSpec, InputFormat};

/// The newest protocol version this build speaks (and the one its own
/// clients send).
pub const PROTOCOL_VERSION: u64 = 2;

/// Machine-readable failure categories of v2 error responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was malformed: bad JSON, a wrong field type, an
    /// unknown `--emit` kind, an invalid options spec.
    BadRequest,
    /// The `op` field named no known operation.
    UnknownOp,
    /// The circuit source failed to parse.
    ParseError,
    /// The compiled program failed post-compile verification.
    VerifyError,
    /// One request line exceeded the daemon's size bound.
    TooLarge,
    /// The request's `v` is a version this daemon does not speak.
    UnsupportedVersion,
    /// The daemon is draining and no longer accepts work.
    ShuttingDown,
    /// The daemon failed internally (e.g. a compile worker died).
    Internal,
    /// A flat v1 error string decoded by a v2 client; carries no code on
    /// the wire.
    Legacy,
    /// A code this client build does not know (a newer server). Treat as
    /// an opaque failure.
    Other(String),
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(&self) -> &str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::ParseError => "parse_error",
            ErrorCode::VerifyError => "verify_error",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
            ErrorCode::Legacy => "legacy",
            ErrorCode::Other(code) => code,
        }
    }

    fn parse(code: &str) -> ErrorCode {
        match code {
            "bad_request" => ErrorCode::BadRequest,
            "unknown_op" => ErrorCode::UnknownOp,
            "parse_error" => ErrorCode::ParseError,
            "verify_error" => ErrorCode::VerifyError,
            "too_large" => ErrorCode::TooLarge,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "shutting_down" => ErrorCode::ShuttingDown,
            "internal" => ErrorCode::Internal,
            "legacy" => ErrorCode::Legacy,
            other => ErrorCode::Other(other.to_string()),
        }
    }
}

/// A structured error: a category for machines, a sentence for humans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The failure category.
    pub code: ErrorCode,
    /// The one-line human-readable diagnostic.
    pub message: String,
}

impl WireError {
    /// Builds an error from its parts.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile a circuit and return the requested artifact.
    Compile(CompileRequest),
    /// Report cache, queue, and store statistics.
    Stats,
    /// Gracefully stop the daemon.
    Shutdown,
}

/// The payload of a `compile` request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// Input format of `source`.
    pub format: InputFormat,
    /// The circuit text (MIG text format or ASCII AIGER).
    pub source: String,
    /// Optimization and compilation options.
    pub spec: CompileSpec,
    /// Artifact to return (`listing`, `asm`, `stats`, `dot`, `mig`).
    pub emit: String,
}

impl Default for CompileRequest {
    fn default() -> Self {
        CompileRequest {
            format: InputFormat::Mig,
            source: String::new(),
            spec: CompileSpec::default(),
            emit: "listing".to_string(),
        }
    }
}

impl CompileRequest {
    /// Fingerprint of everything besides the graph that shapes the
    /// artifact — the options half of the result-cache key. The input
    /// *format* is deliberately excluded: the graph digest already
    /// identifies the parsed structure, so the same circuit arriving as
    /// MIG text or as AIGER shares one cache entry. The protocol version
    /// is excluded for the same reason — it shapes the error envelope,
    /// never the artifact.
    pub fn fingerprint(&self) -> u64 {
        let spec = format!(
            "effort={};extended={};options={};emit={};verify={}",
            self.spec.effort,
            self.spec.extended,
            self.spec.options.spec(),
            self.emit,
            self.spec.verify,
        );
        // The shared FNV-1a over the canonical spelling, truncated — one
        // hash implementation across the cache layers.
        fnv128(spec.as_bytes()) as u64
    }
}

/// One decoded request line: the protocol version to answer with, and the
/// request itself (or the structured error to answer instead).
#[derive(Debug, Clone, PartialEq)]
pub struct Decoded {
    /// 1 for legacy (versionless) requests, 2 otherwise — including for
    /// malformed lines that did parse far enough to carry `"v":2`, and
    /// clamped down to 2 for versions newer than this build (whose error
    /// response is best delivered in the newest shape we both may share).
    pub version: u64,
    /// The request, or the error to answer with.
    pub body: Result<Request, WireError>,
}

impl Request {
    /// Encodes the request as one JSON line (no trailing newline), always
    /// in the newest protocol version.
    pub fn to_json(&self) -> String {
        match self {
            Request::Stats => Value::object([
                ("v", Value::number(PROTOCOL_VERSION)),
                ("op", Value::string("stats")),
            ])
            .to_json(),
            Request::Shutdown => Value::object([
                ("v", Value::number(PROTOCOL_VERSION)),
                ("op", Value::string("shutdown")),
            ])
            .to_json(),
            Request::Compile(compile) => Value::object([
                ("v", Value::number(PROTOCOL_VERSION)),
                ("op", Value::string("compile")),
                ("format", Value::string(compile.format.name())),
                ("source", Value::string(compile.source.clone())),
                ("effort", Value::number(compile.spec.effort as u64)),
                ("extended", Value::Bool(compile.spec.extended)),
                ("options", Value::string(compile.spec.options.spec())),
                ("emit", Value::string(compile.emit.clone())),
                ("verify", Value::Bool(compile.spec.verify)),
            ])
            .to_json(),
        }
    }

    /// Decodes one request line, reporting the protocol version alongside
    /// the request (or the structured error that should answer it).
    pub fn decode(line: &str) -> Decoded {
        let value = match Value::parse(line.trim()) {
            Ok(value) => value,
            Err(e) => {
                // Unparseable lines carry no usable version marker; answer
                // in the legacy shape every client understands.
                return Decoded {
                    version: 1,
                    body: Err(WireError::new(
                        ErrorCode::BadRequest,
                        format!("bad request JSON: {e}"),
                    )),
                };
            }
        };
        let version = match value.get("v") {
            None => 1,
            Some(v) => match v.as_u64() {
                Some(v) => v,
                None => {
                    return Decoded {
                        version: PROTOCOL_VERSION,
                        body: Err(WireError::new(
                            ErrorCode::BadRequest,
                            "field 'v' must be a number",
                        )),
                    }
                }
            },
        };
        let answer_version = version.clamp(1, PROTOCOL_VERSION);
        if version == 0 || version > PROTOCOL_VERSION {
            return Decoded {
                version: answer_version,
                body: Err(WireError::new(
                    ErrorCode::UnsupportedVersion,
                    format!(
                        "unsupported protocol version {version} (this daemon speaks v1 and v2)"
                    ),
                )),
            };
        }
        Decoded {
            version,
            body: Request::from_value(&value).map_err(|message| {
                let code = if value.get("op").and_then(Value::as_str).is_some()
                    && message.starts_with("unknown op")
                {
                    ErrorCode::UnknownOp
                } else {
                    ErrorCode::BadRequest
                };
                WireError::new(code, message)
            }),
        }
    }

    /// Decodes one request line, dropping the version information.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for malformed JSON, an unknown `op`, a
    /// missing `source`, or invalid option values.
    pub fn from_json(line: &str) -> Result<Request, String> {
        let decoded = Request::decode(line);
        decoded.body.map_err(|error| error.message)
    }

    fn from_value(value: &Value) -> Result<Request, String> {
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request is missing field 'op'")?;
        match op {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "compile" => {
                let mut request = CompileRequest {
                    source: value
                        .get("source")
                        .and_then(Value::as_str)
                        .ok_or("compile request is missing field 'source'")?
                        .to_string(),
                    ..CompileRequest::default()
                };
                if let Some(format) = value.get("format") {
                    let name = format.as_str().ok_or("field 'format' must be a string")?;
                    request.format = InputFormat::parse(name)?;
                }
                if let Some(effort) = value.get("effort") {
                    request.spec.effort = effort
                        .as_u64()
                        .ok_or("field 'effort' must be a non-negative number")?
                        as usize;
                }
                if let Some(extended) = value.get("extended") {
                    request.spec.extended = extended
                        .as_bool()
                        .ok_or("field 'extended' must be a boolean")?;
                }
                if let Some(options) = value.get("options") {
                    let spec = options.as_str().ok_or("field 'options' must be a string")?;
                    request.spec.options = CompilerOptions::parse_spec(spec)?;
                }
                if let Some(emit) = value.get("emit") {
                    request.emit = emit
                        .as_str()
                        .ok_or("field 'emit' must be a string")?
                        .to_string();
                }
                if let Some(verify) = value.get("verify") {
                    request.spec.verify =
                        verify.as_bool().ok_or("field 'verify' must be a boolean")?;
                }
                Ok(Request::Compile(request))
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// One shard's view in a stats response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Jobs waiting (not yet started) on the shard's queue.
    pub queue_depth: usize,
    /// The shard cache's counters.
    pub cache: CacheStats,
}

/// The payload of a `stats` response.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardStats>,
    /// Registered emission-target names, registry order (`rm3` first).
    pub targets: Vec<String>,
    /// Persistent-store counters; `None` when the daemon runs without
    /// `--store` (and in responses from older daemons).
    pub store: Option<StoreCounters>,
}

impl ServiceStats {
    /// Counters summed over all shards.
    pub fn totals(&self) -> CacheStats {
        let mut totals = CacheStats::default();
        for shard in &self.shards {
            totals.merge(&shard.cache);
        }
        totals
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A compile result.
    Compile(CompileResponse),
    /// A statistics snapshot.
    Stats(ServiceStats),
    /// Shutdown acknowledged.
    Shutdown,
    /// The request failed.
    Error(WireError),
}

/// The payload of a successful compile response.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileResponse {
    /// `true` when the artifact came from the result cache (in-memory or
    /// persistent).
    pub cached: bool,
    /// Hex spelling of the cache key (graph digest + options fingerprint).
    pub key: String,
    /// `#I` of the compiled program.
    pub instructions: u64,
    /// `#R` of the compiled program.
    pub rams: u64,
    /// The largest per-cell write count of one execution (the wear
    /// hot-spot the endurance analyses track).
    pub max_cell_writes: u64,
    /// The requested artifact, exactly as offline `plimc` would print it.
    pub output: String,
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline), in
    /// the error shape of the given protocol version. Success responses
    /// are identical across versions.
    pub fn to_json(&self, version: u64) -> String {
        match self {
            Response::Error(error) => {
                let payload = if version >= 2 {
                    Value::object([
                        ("code", Value::string(error.code.as_str())),
                        ("message", Value::string(error.message.clone())),
                    ])
                } else {
                    Value::string(error.message.clone())
                };
                Value::object([("ok", Value::Bool(false)), ("error", payload)]).to_json()
            }
            Response::Shutdown => {
                Value::object([("ok", Value::Bool(true)), ("op", Value::string("shutdown"))])
                    .to_json()
            }
            Response::Compile(compile) => Value::object([
                ("ok", Value::Bool(true)),
                ("op", Value::string("compile")),
                ("cached", Value::Bool(compile.cached)),
                ("key", Value::string(compile.key.clone())),
                ("instructions", Value::number(compile.instructions)),
                ("rams", Value::number(compile.rams)),
                ("max_cell_writes", Value::number(compile.max_cell_writes)),
                ("output", Value::string(compile.output.clone())),
            ])
            .to_json(),
            Response::Stats(stats) => {
                let totals = stats.totals();
                let shards: Vec<Value> = stats
                    .shards
                    .iter()
                    .map(|shard| {
                        Value::object([
                            ("queue_depth", Value::number(shard.queue_depth as u64)),
                            ("hits", Value::number(shard.cache.hits)),
                            ("misses", Value::number(shard.cache.misses)),
                            ("evictions", Value::number(shard.cache.evictions)),
                            ("bytes", Value::number(shard.cache.bytes as u64)),
                            ("entries", Value::number(shard.cache.entries as u64)),
                        ])
                    })
                    .collect();
                let targets: Vec<Value> = stats
                    .targets
                    .iter()
                    .map(|name| Value::string(name.clone()))
                    .collect();
                let mut fields = vec![
                    ("ok", Value::Bool(true)),
                    ("op", Value::string("stats")),
                    ("hits", Value::number(totals.hits)),
                    ("misses", Value::number(totals.misses)),
                    ("evictions", Value::number(totals.evictions)),
                    ("cached_bytes", Value::number(totals.bytes as u64)),
                    ("cached_entries", Value::number(totals.entries as u64)),
                    ("targets", Value::Array(targets)),
                ];
                if let Some(store) = &stats.store {
                    fields.push((
                        "store",
                        Value::object([
                            ("hits", Value::number(store.hits)),
                            ("misses", Value::number(store.misses)),
                            ("corrupt", Value::number(store.corrupt)),
                            ("writes", Value::number(store.writes)),
                        ]),
                    ));
                }
                fields.push(("shards", Value::Array(shards)));
                Value::object(fields).to_json()
            }
        }
    }

    /// Decodes one response line (either protocol version).
    ///
    /// # Errors
    ///
    /// Returns a one-line message for malformed JSON or a response shape
    /// this client does not understand.
    pub fn from_json(line: &str) -> Result<Response, String> {
        let value = Value::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
        let ok = value
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or("response is missing field 'ok'")?;
        if !ok {
            let error = value.get("error").ok_or("error response without 'error'")?;
            // v2 daemons send an object, v1 daemons a flat string; this
            // client decodes both so it can talk to either.
            let error = if let Some(message) = error.as_str() {
                WireError::new(ErrorCode::Legacy, message)
            } else {
                WireError::new(
                    error
                        .get("code")
                        .and_then(Value::as_str)
                        .map_or(ErrorCode::Legacy, ErrorCode::parse),
                    error
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("unspecified server error"),
                )
            };
            return Ok(Response::Error(error));
        }
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("response is missing field 'op'")?;
        match op {
            "shutdown" => Ok(Response::Shutdown),
            "compile" => {
                let field = |name: &str| {
                    value
                        .get(name)
                        .ok_or(format!("compile response is missing field '{name}'"))
                };
                Ok(Response::Compile(CompileResponse {
                    cached: field("cached")?
                        .as_bool()
                        .ok_or("'cached' must be a boolean")?,
                    key: field("key")?
                        .as_str()
                        .ok_or("'key' must be a string")?
                        .to_string(),
                    instructions: field("instructions")?
                        .as_u64()
                        .ok_or("'instructions' must be a number")?,
                    rams: field("rams")?.as_u64().ok_or("'rams' must be a number")?,
                    max_cell_writes: field("max_cell_writes")?
                        .as_u64()
                        .ok_or("'max_cell_writes' must be a number")?,
                    output: field("output")?
                        .as_str()
                        .ok_or("'output' must be a string")?
                        .to_string(),
                }))
            }
            "stats" => {
                let shards = value
                    .get("shards")
                    .and_then(Value::as_array)
                    .ok_or("stats response is missing field 'shards'")?;
                let shard_stats: Result<Vec<ShardStats>, String> = shards
                    .iter()
                    .map(|shard| {
                        let number = |name: &str| {
                            shard
                                .get(name)
                                .and_then(Value::as_u64)
                                .ok_or(format!("stats shard is missing numeric field '{name}'"))
                        };
                        Ok(ShardStats {
                            queue_depth: number("queue_depth")? as usize,
                            cache: CacheStats {
                                hits: number("hits")?,
                                misses: number("misses")?,
                                evictions: number("evictions")?,
                                bytes: number("bytes")? as usize,
                                entries: number("entries")? as usize,
                            },
                        })
                    })
                    .collect();
                // Absent in responses from pre-target daemons: default to
                // "unadvertised" rather than rejecting the whole snapshot.
                let targets = value
                    .get("targets")
                    .and_then(Value::as_array)
                    .map(|names| {
                        names
                            .iter()
                            .map(|name| {
                                name.as_str()
                                    .map(str::to_string)
                                    .ok_or("stats targets must be strings".to_string())
                            })
                            .collect::<Result<Vec<String>, String>>()
                    })
                    .transpose()?
                    .unwrap_or_default();
                // Same back-compat posture for the store block: absent
                // means "daemon has no persistent store" (or predates it).
                let store = value.get("store").map(|store| {
                    let number = |name: &str| {
                        store
                            .get(name)
                            .and_then(Value::as_u64)
                            .ok_or(format!("stats store is missing numeric field '{name}'"))
                    };
                    Ok::<StoreCounters, String>(StoreCounters {
                        hits: number("hits")?,
                        misses: number("misses")?,
                        corrupt: number("corrupt")?,
                        writes: number("writes")?,
                    })
                });
                Ok(Response::Stats(ServiceStats {
                    shards: shard_stats?,
                    targets,
                    store: store.transpose()?,
                }))
            }
            other => Err(format!("unknown response op `{other}`")),
        }
    }
}

/// Builds the full cache key of a compile request given the graph digest.
pub fn cache_key(digest: u128, request: &CompileRequest) -> CacheKey {
    CacheKey::new(digest, request.fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_request(source: &str) -> CompileRequest {
        CompileRequest {
            source: source.to_string(),
            ..CompileRequest::default()
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Stats,
            Request::Shutdown,
            Request::Compile(CompileRequest {
                format: InputFormat::Aag,
                source: "aag 1 1 0 1 0\n2\n2\n".to_string(),
                spec: CompileSpec {
                    effort: 2,
                    extended: true,
                    options: CompilerOptions::new()
                        .allocator(plim_compiler::AllocatorStrategy::Lifo),
                    verify: false,
                },
                emit: "asm".to_string(),
            }),
        ];
        for request in requests {
            let line = request.to_json();
            assert!(!line.contains('\n'), "framing-unsafe request: {line}");
            assert!(
                line.starts_with(r#"{"v":2,"#),
                "unversioned request: {line}"
            );
            assert_eq!(Request::from_json(&line).unwrap(), request);
            let decoded = Request::decode(&line);
            assert_eq!(decoded.version, 2);
            assert_eq!(decoded.body.unwrap(), request);
        }
    }

    #[test]
    fn versionless_requests_decode_as_v1() {
        let decoded = Request::decode(r#"{"op":"stats"}"#);
        assert_eq!(decoded.version, 1);
        assert_eq!(decoded.body.unwrap(), Request::Stats);
    }

    #[test]
    fn unsupported_versions_are_rejected_with_a_code() {
        for (line, expect_version) in [
            (r#"{"v":3,"op":"stats"}"#, 2),
            (r#"{"v":0,"op":"stats"}"#, 1),
            (r#"{"v":99,"op":"compile","source":"x"}"#, 2),
        ] {
            let decoded = Request::decode(line);
            assert_eq!(decoded.version, expect_version, "{line}");
            let error = decoded.body.unwrap_err();
            assert_eq!(error.code, ErrorCode::UnsupportedVersion, "{line}");
            assert!(error.message.contains("speaks v1 and v2"), "{line}");
        }
        let decoded = Request::decode(r#"{"v":"two","op":"stats"}"#);
        assert_eq!(decoded.body.unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn compile_defaults_match_offline_plimc() {
        let request = Request::from_json(r#"{"op":"compile","source":"x"}"#).unwrap();
        let Request::Compile(compile) = request else {
            panic!("wrong kind");
        };
        assert_eq!(compile.format, InputFormat::Mig);
        assert_eq!(compile.spec, CompileSpec::default());
        assert_eq!(compile.spec.effort, 4);
        assert!(compile.spec.verify);
        assert_eq!(compile.emit, "listing");
    }

    #[test]
    fn malformed_requests_are_diagnosed_with_codes() {
        let cases: [(&str, ErrorCode, &str); 6] = [
            ("not json", ErrorCode::BadRequest, "bad request JSON"),
            ("{}", ErrorCode::BadRequest, "'op'"),
            (r#"{"op":"frobnicate"}"#, ErrorCode::UnknownOp, "unknown op"),
            (r#"{"op":"compile"}"#, ErrorCode::BadRequest, "'source'"),
            (
                r#"{"op":"compile","source":"x","effort":-1}"#,
                ErrorCode::BadRequest,
                "effort",
            ),
            (
                r#"{"op":"compile","source":"x","options":"bogus"}"#,
                ErrorCode::BadRequest,
                "",
            ),
        ];
        for (line, code, fragment) in cases {
            let error = Request::decode(line).body.unwrap_err();
            assert_eq!(error.code, code, "{line}");
            assert!(
                error.message.contains(fragment),
                "{line} → {}",
                error.message
            );
            // The legacy wrapper agrees.
            assert_eq!(Request::from_json(line).unwrap_err(), error.message);
        }
    }

    #[test]
    fn responses_round_trip_in_v2() {
        let responses = [
            Response::Shutdown,
            Response::Error(WireError::new(ErrorCode::ParseError, "boom")),
            Response::Compile(CompileResponse {
                cached: true,
                key: "abc123".to_string(),
                instructions: 42,
                rams: 7,
                max_cell_writes: 9,
                output: "01: 0, 1, @X1\n".to_string(),
            }),
            Response::Stats(ServiceStats {
                shards: vec![
                    ShardStats {
                        queue_depth: 2,
                        cache: CacheStats {
                            hits: 5,
                            misses: 3,
                            evictions: 1,
                            bytes: 100,
                            entries: 2,
                        },
                    },
                    ShardStats::default(),
                ],
                targets: vec!["rm3".to_string(), "ambit".to_string()],
                store: Some(StoreCounters {
                    hits: 4,
                    misses: 2,
                    corrupt: 1,
                    writes: 3,
                }),
            }),
        ];
        for response in responses {
            let line = response.to_json(PROTOCOL_VERSION);
            assert!(!line.contains('\n'), "framing-unsafe response: {line}");
            assert_eq!(Response::from_json(&line).unwrap(), response);
        }
    }

    #[test]
    fn v1_errors_stay_flat_strings_and_decode_as_legacy() {
        let error = Response::Error(WireError::new(ErrorCode::ParseError, "mig: boom"));
        let v1 = error.to_json(1);
        assert_eq!(v1, r#"{"ok":false,"error":"mig: boom"}"#);
        let decoded = Response::from_json(&v1).unwrap();
        assert_eq!(
            decoded,
            Response::Error(WireError::new(ErrorCode::Legacy, "mig: boom"))
        );
        // And the v2 shape carries the machine-readable code.
        let v2 = error.to_json(2);
        assert_eq!(
            v2,
            r#"{"ok":false,"error":{"code":"parse_error","message":"mig: boom"}}"#
        );
        assert_eq!(Response::from_json(&v2).unwrap(), error);
        // Codes from a future server survive as opaque strings.
        let future = r#"{"ok":false,"error":{"code":"quota_exceeded","message":"no"}}"#;
        let Response::Error(error) = Response::from_json(future).unwrap() else {
            panic!("wrong kind");
        };
        assert_eq!(error.code, ErrorCode::Other("quota_exceeded".to_string()));
        assert_eq!(error.code.as_str(), "quota_exceeded");
    }

    #[test]
    fn stats_response_exposes_totals_and_optional_store() {
        let mut stats = ServiceStats {
            shards: vec![
                ShardStats {
                    queue_depth: 0,
                    cache: CacheStats {
                        hits: 2,
                        misses: 1,
                        evictions: 0,
                        bytes: 10,
                        entries: 1,
                    },
                },
                ShardStats {
                    queue_depth: 1,
                    cache: CacheStats {
                        hits: 3,
                        misses: 4,
                        evictions: 2,
                        bytes: 30,
                        entries: 3,
                    },
                },
            ],
            targets: vec!["rm3".to_string()],
            store: None,
        };
        assert_eq!(stats.totals().hits, 5);
        let line = Response::Stats(stats.clone()).to_json(PROTOCOL_VERSION);
        assert!(line.contains("\"hits\":5"), "{line}");
        assert!(line.contains("\"cached_bytes\":40"), "{line}");
        assert!(line.contains("\"targets\":[\"rm3\"]"), "{line}");
        assert!(!line.contains("\"store\""), "{line}");
        stats.store = Some(StoreCounters {
            hits: 1,
            misses: 2,
            corrupt: 0,
            writes: 2,
        });
        let line = Response::Stats(stats).to_json(PROTOCOL_VERSION);
        assert!(
            line.contains(r#""store":{"hits":1,"misses":2,"corrupt":0,"writes":2}"#),
            "{line}"
        );
    }

    #[test]
    fn stats_responses_without_targets_or_store_decode_leniently() {
        // A pre-target daemon's stats line (no `targets`, no `store`) must
        // still decode; the client sees empty advertisements.
        let line = r#"{"ok":true,"op":"stats","hits":0,"misses":0,"evictions":0,"cached_bytes":0,"cached_entries":0,"shards":[]}"#;
        let Response::Stats(stats) = Response::from_json(line).unwrap() else {
            panic!("wrong kind");
        };
        assert!(stats.targets.is_empty());
        assert!(stats.store.is_none());
    }

    #[test]
    fn fingerprint_separates_option_changes_but_not_format() {
        let base = compile_request("inputs a\noutput f = a\n");
        let mut emit = base.clone();
        emit.emit = "asm".to_string();
        let mut effort = base.clone();
        effort.spec.effort = 2;
        let mut format = base.clone();
        format.format = InputFormat::Aag;
        assert_ne!(base.fingerprint(), emit.fingerprint());
        assert_ne!(base.fingerprint(), effort.fingerprint());
        assert_eq!(base.fingerprint(), format.fingerprint());
        let key = cache_key(7, &base);
        assert_eq!(key.graph, 7);
        assert_eq!(key.options, base.fingerprint());
    }

    #[test]
    fn protocol_version_never_reaches_the_cache_key() {
        // The same request spelled as v1 and as v2 must land on one cache
        // entry — the version shapes the error envelope, not the artifact.
        let v1 =
            Request::from_json(r#"{"op":"compile","source":"inputs a\noutput f = a\n"}"#).unwrap();
        let v2 =
            Request::from_json(r#"{"v":2,"op":"compile","source":"inputs a\noutput f = a\n"}"#)
                .unwrap();
        assert_eq!(v1, v2);
        let (Request::Compile(v1), Request::Compile(v2)) = (v1, v2) else {
            panic!("wrong kind");
        };
        assert_eq!(v1.fingerprint(), v2.fingerprint());
        assert_eq!(cache_key(7, &v1), cache_key(7, &v2));
    }

    #[test]
    fn fingerprint_covers_every_compiler_option_field() {
        use plim_compiler::{AllocatorStrategy, OperandSelection, OptLevel, ScheduleOrder};
        // The audit behind the cache key: mutate each CompilerOptions field
        // (and each CompileSpec field) in isolation and demand a distinct
        // fingerprint — a field missing from the spec would alias cache
        // entries across genuinely different programs.
        let base = compile_request("inputs a\noutput f = a\n");
        let mut variants: Vec<(&str, CompileRequest)> = Vec::new();
        let mut opt = base.clone();
        opt.spec.options = opt.spec.options.opt(OptLevel::O2);
        variants.push(("opt", opt));
        let mut schedule = base.clone();
        schedule.spec.options = schedule.spec.options.schedule(ScheduleOrder::Lookahead);
        variants.push(("schedule", schedule));
        let mut operands = base.clone();
        operands.spec.options = operands.spec.options.operands(OperandSelection::ChildOrder);
        variants.push(("operands", operands));
        let mut allocator = base.clone();
        allocator.spec.options = allocator.spec.options.allocator(AllocatorStrategy::Lifo);
        variants.push(("allocator", allocator));
        // The target reaches the fingerprint through the 5-part options
        // spec, so a warm cache entry can never serve a different target.
        plim_backends::install();
        let mut target = base.clone();
        target.spec.options = target
            .spec
            .options
            .target(plim_compiler::Target::parse("ambit").expect("registered"));
        variants.push(("target", target));
        // The rewrite engine reaches the fingerprint through the 6-part
        // options spec, so a warm `arena` artifact can never satisfy an
        // `egraph` request.
        let mut rewrite = base.clone();
        rewrite.spec.options = rewrite
            .spec
            .options
            .rewrite(plim_compiler::RewriteMode::Egraph);
        variants.push(("rewrite", rewrite));
        let mut extended = base.clone();
        extended.spec.extended = true;
        variants.push(("extended", extended));
        let mut verify = base.clone();
        verify.spec.verify = false;
        variants.push(("verify", verify));
        for (field, variant) in &variants {
            assert_ne!(
                base.fingerprint(),
                variant.fingerprint(),
                "field `{field}` does not reach the cache fingerprint"
            );
        }
        // And the three -O levels are pairwise distinct.
        let levels: Vec<u64> = OptLevel::ALL
            .iter()
            .map(|&level| {
                let mut request = base.clone();
                request.spec.options = request.spec.options.opt(level);
                request.fingerprint()
            })
            .collect();
        assert_ne!(levels[0], levels[1]);
        assert_ne!(levels[1], levels[2]);
        assert_ne!(levels[0], levels[2]);
    }
}
