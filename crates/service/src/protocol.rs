//! The `plimd` wire protocol: newline-delimited JSON requests/responses.
//!
//! Framing: the client writes one JSON object per line; the server answers
//! each with one JSON object line. String escaping (via
//! [`plim_compiler::json`]) guarantees encoded documents never contain a
//! raw newline, so multi-line circuit sources travel safely inside one
//! frame.
//!
//! Requests (`op` selects the kind):
//!
//! ```text
//! {"op":"compile","format":"mig"|"aag","source":"…",
//!  "effort":4,"extended":false,"options":"priority+smart+fifo+o0",
//!  "emit":"listing","verify":true}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Only `source` is required for `compile`; every other field has the
//! offline `plimc` default. The `options` spec carries every compiler
//! option including the `-O` level and the emission target (older three-
//! and four-part specs without them are accepted and mean `o0` / `rm3`);
//! because the cache key is derived from this exact spelling, two requests
//! differing only in `-O` — or only in target — can never share a cache
//! entry. Responses carry `"ok":true` plus op-specific fields, or
//! `"ok":false` with a one-line `error`. A `stats` response additionally
//! advertises the daemon's registered emission targets in a `targets`
//! array (registry order, `rm3` first), so clients can discover which
//! `+target` spec suffixes the server accepts.

use plim_compiler::cache::{fnv128, CacheKey, CacheStats};
use plim_compiler::json::Value;
use plim_compiler::CompilerOptions;

use crate::pipeline::{CompileSpec, InputFormat};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile a circuit and return the requested artifact.
    Compile(CompileRequest),
    /// Report cache and queue statistics.
    Stats,
    /// Gracefully stop the daemon.
    Shutdown,
}

/// The payload of a `compile` request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// Input format of `source`.
    pub format: InputFormat,
    /// The circuit text (MIG text format or ASCII AIGER).
    pub source: String,
    /// Optimization and compilation options.
    pub spec: CompileSpec,
    /// Artifact to return (`listing`, `asm`, `stats`, `dot`, `mig`).
    pub emit: String,
}

impl Default for CompileRequest {
    fn default() -> Self {
        CompileRequest {
            format: InputFormat::Mig,
            source: String::new(),
            spec: CompileSpec::default(),
            emit: "listing".to_string(),
        }
    }
}

impl CompileRequest {
    /// Fingerprint of everything besides the graph that shapes the
    /// artifact — the options half of the result-cache key. The input
    /// *format* is deliberately excluded: the graph digest already
    /// identifies the parsed structure, so the same circuit arriving as
    /// MIG text or as AIGER shares one cache entry.
    pub fn fingerprint(&self) -> u64 {
        let spec = format!(
            "effort={};extended={};options={};emit={};verify={}",
            self.spec.effort,
            self.spec.extended,
            self.spec.options.spec(),
            self.emit,
            self.spec.verify,
        );
        // The shared FNV-1a over the canonical spelling, truncated — one
        // hash implementation across the cache layers.
        fnv128(spec.as_bytes()) as u64
    }
}

impl Request {
    /// Encodes the request as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Request::Stats => Value::object([("op", Value::string("stats"))]).to_json(),
            Request::Shutdown => Value::object([("op", Value::string("shutdown"))]).to_json(),
            Request::Compile(compile) => Value::object([
                ("op", Value::string("compile")),
                ("format", Value::string(compile.format.name())),
                ("source", Value::string(compile.source.clone())),
                ("effort", Value::number(compile.spec.effort as u64)),
                ("extended", Value::Bool(compile.spec.extended)),
                ("options", Value::string(compile.spec.options.spec())),
                ("emit", Value::string(compile.emit.clone())),
                ("verify", Value::Bool(compile.spec.verify)),
            ])
            .to_json(),
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for malformed JSON, an unknown `op`, a
    /// missing `source`, or invalid option values.
    pub fn from_json(line: &str) -> Result<Request, String> {
        let value = Value::parse(line.trim()).map_err(|e| format!("bad request JSON: {e}"))?;
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request is missing field 'op'")?;
        match op {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "compile" => {
                let mut request = CompileRequest {
                    source: value
                        .get("source")
                        .and_then(Value::as_str)
                        .ok_or("compile request is missing field 'source'")?
                        .to_string(),
                    ..CompileRequest::default()
                };
                if let Some(format) = value.get("format") {
                    let name = format.as_str().ok_or("field 'format' must be a string")?;
                    request.format = InputFormat::parse(name)?;
                }
                if let Some(effort) = value.get("effort") {
                    request.spec.effort = effort
                        .as_u64()
                        .ok_or("field 'effort' must be a non-negative number")?
                        as usize;
                }
                if let Some(extended) = value.get("extended") {
                    request.spec.extended = extended
                        .as_bool()
                        .ok_or("field 'extended' must be a boolean")?;
                }
                if let Some(options) = value.get("options") {
                    let spec = options.as_str().ok_or("field 'options' must be a string")?;
                    request.spec.options = CompilerOptions::parse_spec(spec)?;
                }
                if let Some(emit) = value.get("emit") {
                    request.emit = emit
                        .as_str()
                        .ok_or("field 'emit' must be a string")?
                        .to_string();
                }
                if let Some(verify) = value.get("verify") {
                    request.spec.verify =
                        verify.as_bool().ok_or("field 'verify' must be a boolean")?;
                }
                Ok(Request::Compile(request))
            }
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// One shard's view in a stats response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Jobs waiting (not yet started) on the shard's queue.
    pub queue_depth: usize,
    /// The shard cache's counters.
    pub cache: CacheStats,
}

/// The payload of a `stats` response.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardStats>,
    /// Registered emission-target names, registry order (`rm3` first).
    pub targets: Vec<String>,
}

impl ServiceStats {
    /// Counters summed over all shards.
    pub fn totals(&self) -> CacheStats {
        let mut totals = CacheStats::default();
        for shard in &self.shards {
            totals.merge(&shard.cache);
        }
        totals
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A compile result.
    Compile(CompileResponse),
    /// A statistics snapshot.
    Stats(ServiceStats),
    /// Shutdown acknowledged.
    Shutdown,
    /// The request failed; the payload is a one-line diagnostic.
    Error(String),
}

/// The payload of a successful compile response.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileResponse {
    /// `true` when the artifact came from the result cache.
    pub cached: bool,
    /// Hex spelling of the cache key (graph digest + options fingerprint).
    pub key: String,
    /// `#I` of the compiled program.
    pub instructions: u64,
    /// `#R` of the compiled program.
    pub rams: u64,
    /// The largest per-cell write count of one execution (the wear
    /// hot-spot the endurance analyses track).
    pub max_cell_writes: u64,
    /// The requested artifact, exactly as offline `plimc` would print it.
    pub output: String,
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Response::Error(message) => Value::object([
                ("ok", Value::Bool(false)),
                ("error", Value::string(message.clone())),
            ])
            .to_json(),
            Response::Shutdown => {
                Value::object([("ok", Value::Bool(true)), ("op", Value::string("shutdown"))])
                    .to_json()
            }
            Response::Compile(compile) => Value::object([
                ("ok", Value::Bool(true)),
                ("op", Value::string("compile")),
                ("cached", Value::Bool(compile.cached)),
                ("key", Value::string(compile.key.clone())),
                ("instructions", Value::number(compile.instructions)),
                ("rams", Value::number(compile.rams)),
                ("max_cell_writes", Value::number(compile.max_cell_writes)),
                ("output", Value::string(compile.output.clone())),
            ])
            .to_json(),
            Response::Stats(stats) => {
                let totals = stats.totals();
                let shards: Vec<Value> = stats
                    .shards
                    .iter()
                    .map(|shard| {
                        Value::object([
                            ("queue_depth", Value::number(shard.queue_depth as u64)),
                            ("hits", Value::number(shard.cache.hits)),
                            ("misses", Value::number(shard.cache.misses)),
                            ("evictions", Value::number(shard.cache.evictions)),
                            ("bytes", Value::number(shard.cache.bytes as u64)),
                            ("entries", Value::number(shard.cache.entries as u64)),
                        ])
                    })
                    .collect();
                let targets: Vec<Value> = stats
                    .targets
                    .iter()
                    .map(|name| Value::string(name.clone()))
                    .collect();
                Value::object([
                    ("ok", Value::Bool(true)),
                    ("op", Value::string("stats")),
                    ("hits", Value::number(totals.hits)),
                    ("misses", Value::number(totals.misses)),
                    ("evictions", Value::number(totals.evictions)),
                    ("cached_bytes", Value::number(totals.bytes as u64)),
                    ("cached_entries", Value::number(totals.entries as u64)),
                    ("targets", Value::Array(targets)),
                    ("shards", Value::Array(shards)),
                ])
                .to_json()
            }
        }
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns a one-line message for malformed JSON or a response shape
    /// this client does not understand.
    pub fn from_json(line: &str) -> Result<Response, String> {
        let value = Value::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
        let ok = value
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or("response is missing field 'ok'")?;
        if !ok {
            let message = value
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unspecified server error");
            return Ok(Response::Error(message.to_string()));
        }
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("response is missing field 'op'")?;
        match op {
            "shutdown" => Ok(Response::Shutdown),
            "compile" => {
                let field = |name: &str| {
                    value
                        .get(name)
                        .ok_or(format!("compile response is missing field '{name}'"))
                };
                Ok(Response::Compile(CompileResponse {
                    cached: field("cached")?
                        .as_bool()
                        .ok_or("'cached' must be a boolean")?,
                    key: field("key")?
                        .as_str()
                        .ok_or("'key' must be a string")?
                        .to_string(),
                    instructions: field("instructions")?
                        .as_u64()
                        .ok_or("'instructions' must be a number")?,
                    rams: field("rams")?.as_u64().ok_or("'rams' must be a number")?,
                    max_cell_writes: field("max_cell_writes")?
                        .as_u64()
                        .ok_or("'max_cell_writes' must be a number")?,
                    output: field("output")?
                        .as_str()
                        .ok_or("'output' must be a string")?
                        .to_string(),
                }))
            }
            "stats" => {
                let shards = value
                    .get("shards")
                    .and_then(Value::as_array)
                    .ok_or("stats response is missing field 'shards'")?;
                let shard_stats: Result<Vec<ShardStats>, String> = shards
                    .iter()
                    .map(|shard| {
                        let number = |name: &str| {
                            shard
                                .get(name)
                                .and_then(Value::as_u64)
                                .ok_or(format!("stats shard is missing numeric field '{name}'"))
                        };
                        Ok(ShardStats {
                            queue_depth: number("queue_depth")? as usize,
                            cache: CacheStats {
                                hits: number("hits")?,
                                misses: number("misses")?,
                                evictions: number("evictions")?,
                                bytes: number("bytes")? as usize,
                                entries: number("entries")? as usize,
                            },
                        })
                    })
                    .collect();
                // Absent in responses from pre-target daemons: default to
                // "unadvertised" rather than rejecting the whole snapshot.
                let targets = value
                    .get("targets")
                    .and_then(Value::as_array)
                    .map(|names| {
                        names
                            .iter()
                            .map(|name| {
                                name.as_str()
                                    .map(str::to_string)
                                    .ok_or("stats targets must be strings".to_string())
                            })
                            .collect::<Result<Vec<String>, String>>()
                    })
                    .transpose()?
                    .unwrap_or_default();
                Ok(Response::Stats(ServiceStats {
                    shards: shard_stats?,
                    targets,
                }))
            }
            other => Err(format!("unknown response op `{other}`")),
        }
    }
}

/// Builds the full cache key of a compile request given the graph digest.
pub fn cache_key(digest: u128, request: &CompileRequest) -> CacheKey {
    CacheKey::new(digest, request.fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_request(source: &str) -> CompileRequest {
        CompileRequest {
            source: source.to_string(),
            ..CompileRequest::default()
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Stats,
            Request::Shutdown,
            Request::Compile(CompileRequest {
                format: InputFormat::Aag,
                source: "aag 1 1 0 1 0\n2\n2\n".to_string(),
                spec: CompileSpec {
                    effort: 2,
                    extended: true,
                    options: CompilerOptions::new()
                        .allocator(plim_compiler::AllocatorStrategy::Lifo),
                    verify: false,
                },
                emit: "asm".to_string(),
            }),
        ];
        for request in requests {
            let line = request.to_json();
            assert!(!line.contains('\n'), "framing-unsafe request: {line}");
            assert_eq!(Request::from_json(&line).unwrap(), request);
        }
    }

    #[test]
    fn compile_defaults_match_offline_plimc() {
        let request = Request::from_json(r#"{"op":"compile","source":"x"}"#).unwrap();
        let Request::Compile(compile) = request else {
            panic!("wrong kind");
        };
        assert_eq!(compile.format, InputFormat::Mig);
        assert_eq!(compile.spec, CompileSpec::default());
        assert_eq!(compile.spec.effort, 4);
        assert!(compile.spec.verify);
        assert_eq!(compile.emit, "listing");
    }

    #[test]
    fn malformed_requests_are_diagnosed() {
        assert!(Request::from_json("not json")
            .unwrap_err()
            .contains("bad request JSON"));
        assert!(Request::from_json("{}").unwrap_err().contains("'op'"));
        assert!(Request::from_json(r#"{"op":"frobnicate"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(Request::from_json(r#"{"op":"compile"}"#)
            .unwrap_err()
            .contains("'source'"));
        assert!(Request::from_json(r#"{"op":"compile","source":"x","effort":-1}"#).is_err());
        assert!(Request::from_json(r#"{"op":"compile","source":"x","options":"bogus"}"#).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Shutdown,
            Response::Error("boom".to_string()),
            Response::Compile(CompileResponse {
                cached: true,
                key: "abc123".to_string(),
                instructions: 42,
                rams: 7,
                max_cell_writes: 9,
                output: "01: 0, 1, @X1\n".to_string(),
            }),
            Response::Stats(ServiceStats {
                shards: vec![
                    ShardStats {
                        queue_depth: 2,
                        cache: CacheStats {
                            hits: 5,
                            misses: 3,
                            evictions: 1,
                            bytes: 100,
                            entries: 2,
                        },
                    },
                    ShardStats::default(),
                ],
                targets: vec!["rm3".to_string(), "ambit".to_string()],
            }),
        ];
        for response in responses {
            let line = response.to_json();
            assert!(!line.contains('\n'), "framing-unsafe response: {line}");
            assert_eq!(Response::from_json(&line).unwrap(), response);
        }
    }

    #[test]
    fn stats_response_exposes_totals() {
        let stats = ServiceStats {
            shards: vec![
                ShardStats {
                    queue_depth: 0,
                    cache: CacheStats {
                        hits: 2,
                        misses: 1,
                        evictions: 0,
                        bytes: 10,
                        entries: 1,
                    },
                },
                ShardStats {
                    queue_depth: 1,
                    cache: CacheStats {
                        hits: 3,
                        misses: 4,
                        evictions: 2,
                        bytes: 30,
                        entries: 3,
                    },
                },
            ],
            targets: vec!["rm3".to_string()],
        };
        assert_eq!(stats.totals().hits, 5);
        let line = Response::Stats(stats).to_json();
        assert!(line.contains("\"hits\":5"), "{line}");
        assert!(line.contains("\"cached_bytes\":40"), "{line}");
        assert!(line.contains("\"targets\":[\"rm3\"]"), "{line}");
    }

    #[test]
    fn stats_responses_without_targets_decode_as_unadvertised() {
        // A pre-target daemon's stats line (no `targets` array) must still
        // decode; the client sees an empty advertisement.
        let line = r#"{"ok":true,"op":"stats","hits":0,"misses":0,"evictions":0,"cached_bytes":0,"cached_entries":0,"shards":[]}"#;
        let Response::Stats(stats) = Response::from_json(line).unwrap() else {
            panic!("wrong kind");
        };
        assert!(stats.targets.is_empty());
    }

    #[test]
    fn fingerprint_separates_option_changes_but_not_format() {
        let base = compile_request("inputs a\noutput f = a\n");
        let mut emit = base.clone();
        emit.emit = "asm".to_string();
        let mut effort = base.clone();
        effort.spec.effort = 2;
        let mut format = base.clone();
        format.format = InputFormat::Aag;
        assert_ne!(base.fingerprint(), emit.fingerprint());
        assert_ne!(base.fingerprint(), effort.fingerprint());
        assert_eq!(base.fingerprint(), format.fingerprint());
        let key = cache_key(7, &base);
        assert_eq!(key.graph, 7);
        assert_eq!(key.options, base.fingerprint());
    }

    #[test]
    fn fingerprint_covers_every_compiler_option_field() {
        use plim_compiler::{AllocatorStrategy, OperandSelection, OptLevel, ScheduleOrder};
        // The audit behind the cache key: mutate each CompilerOptions field
        // (and each CompileSpec field) in isolation and demand a distinct
        // fingerprint — a field missing from the spec would alias cache
        // entries across genuinely different programs.
        let base = compile_request("inputs a\noutput f = a\n");
        let mut variants: Vec<(&str, CompileRequest)> = Vec::new();
        let mut opt = base.clone();
        opt.spec.options = opt.spec.options.opt(OptLevel::O2);
        variants.push(("opt", opt));
        let mut schedule = base.clone();
        schedule.spec.options = schedule.spec.options.schedule(ScheduleOrder::Lookahead);
        variants.push(("schedule", schedule));
        let mut operands = base.clone();
        operands.spec.options = operands.spec.options.operands(OperandSelection::ChildOrder);
        variants.push(("operands", operands));
        let mut allocator = base.clone();
        allocator.spec.options = allocator.spec.options.allocator(AllocatorStrategy::Lifo);
        variants.push(("allocator", allocator));
        // The target reaches the fingerprint through the 5-part options
        // spec, so a warm cache entry can never serve a different target.
        plim_backends::install();
        let mut target = base.clone();
        target.spec.options = target
            .spec
            .options
            .target(plim_compiler::Target::parse("ambit").expect("registered"));
        variants.push(("target", target));
        let mut extended = base.clone();
        extended.spec.extended = true;
        variants.push(("extended", extended));
        let mut verify = base.clone();
        verify.spec.verify = false;
        variants.push(("verify", verify));
        for (field, variant) in &variants {
            assert_ne!(
                base.fingerprint(),
                variant.fingerprint(),
                "field `{field}` does not reach the cache fingerprint"
            );
        }
        // And the three -O levels are pairwise distinct.
        let levels: Vec<u64> = OptLevel::ALL
            .iter()
            .map(|&level| {
                let mut request = base.clone();
                request.spec.options = request.spec.options.opt(level);
                request.fingerprint()
            })
            .collect();
        assert_ne!(levels[0], levels[1]);
        assert_ne!(levels[1], levels[2]);
        assert_ne!(levels[0], levels[2]);
    }
}
