//! # plim-service — the `plimd` compile service and the `plimc` driver
//!
//! Every consumer of the MIG → PLiM pipeline used to pay the full
//! rewrite + compile cost per invocation, even for identical inputs. This
//! crate turns the pipeline into a long-running daemon, `plimd`: a
//! std-only TCP service that accepts compile requests as newline-delimited
//! JSON, shards them across a pinned worker pool
//! ([`plim_parallel::pool::WorkerPool`]), and serves repeats from a
//! content-addressed result cache
//! ([`plim_compiler::cache::LruCache`]) keyed by the canonical structural
//! digest of the input graph ([`mig::canon::structural_digest`]) plus a
//! fingerprint of the request options.
//!
//! Because the digest is order-independent and Ω.I-normalized,
//! syntactically different dumps of the same circuit hit the same cache
//! entry; a warm request skips parsing-onward work entirely (no rewrite,
//! no compile, no verification) and returns the stored artifact.
//!
//! ## The v2 server core
//!
//! The daemon fronts the worker pool with a single-threaded,
//! edge-triggered reactor ([`poller`] wraps `epoll`/`kqueue`; the event
//! loop lives in the private `reactor` module). One thread owns every
//! connection: requests are parsed out of per-connection read buffers
//! (arbitrarily pipelined), compile work is dispatched to the pinned
//! worker shards, and completions flow back over a wakeable queue
//! ([`plim_parallel::queue::CompletionQueue`]) to be written out *in
//! request order*. A connection with [`server::ServerConfig::max_pipeline`]
//! responses outstanding stops being read until it drains — backpressure
//! reaches the client as TCP flow control, not memory growth. Idle
//! connections are reaped after [`server::ServerConfig::idle_timeout`];
//! `shutdown` drains in-flight work gracefully before the process exits.
//!
//! With `--store DIR`, compiled artifacts are also written through to an
//! on-disk content-addressed store ([`plim_compiler::ArtifactStore`])
//! keyed exactly like the LRU, so a restarted daemon serves repeats
//! warm from its first request.
//!
//! The crate also hosts the `plimc` command-line driver (moved here from
//! `plim-compiler` so the `serve`/`request`/`loadtest` subcommands can
//! link the service) and splits the driver's compile path into the
//! reusable [`pipeline`] module — the daemon and the offline CLI run the
//! *same* functions, which is what makes served output byte-identical to
//! offline output (and what [`loadtest`] verifies under load).
//!
//! ## Modules
//!
//! * [`pipeline`] — parse / optimize / compile / verify / emit, shared by
//!   `plimc` offline mode and the daemon;
//! * [`protocol`] — the versioned wire protocol (requests, responses,
//!   error codes, stats), built on [`plim_compiler::json`];
//! * [`poller`] — the safe edge-triggered readiness facade over
//!   `epoll`/`kqueue` (the workspace's only `unsafe` code);
//! * [`server`] — daemon configuration, shard dispatch, cache and store
//!   plumbing, `serve` CLI;
//! * [`client`] — the blocking client used by `plimc request`, with
//!   timeout and connect-retry support;
//! * [`loadtest`] — the `plimc loadtest` harness: thousands of concurrent
//!   pipelined connections, byte-compared against the offline pipeline.
//!
//! ## Wire protocol (v2)
//!
//! One JSON object per line, one response line per request, responses in
//! request order; see [`protocol`] for the exact fields and error codes.
//! Requests carry `"v":2`; versionless requests are treated as v1 and
//! answered in the v1 shape (flat error strings). A session transcript:
//!
//! ```text
//! → {"v":2,"op":"compile","format":"mig","source":"inputs a b\nn = maj(0, a, b)\noutput f = n\n"}
//! ← {"ok":true,"op":"compile","cached":false,"key":"…","instructions":2,"rams":1,"output":"01: …"}
//! → {"v":2,"op":"stats"}
//! ← {"ok":true,"op":"stats","hits":0,"misses":1,…,"store":{"hits":0,"misses":1,"corrupt":0,"writes":1},…}
//! → {"v":2,"op":"nonsense"}
//! ← {"ok":false,"error":{"code":"unknown_op","message":"unknown op `nonsense`"}}
//! → {"v":2,"op":"shutdown"}
//! ← {"ok":true,"op":"shutdown"}
//! ```

pub mod client;
pub mod loadtest;
pub mod pipeline;
pub mod poller;
pub mod protocol;
mod reactor;
pub mod server;
