//! # plim-service — the `plimd` compile service and the `plimc` driver
//!
//! Every consumer of the MIG → PLiM pipeline used to pay the full
//! rewrite + compile cost per invocation, even for identical inputs. This
//! crate turns the pipeline into a long-running daemon, `plimd`: a
//! std-only TCP service that accepts compile requests as newline-delimited
//! JSON, shards them across a pinned worker pool
//! ([`plim_parallel::pool::WorkerPool`]), and serves repeats from a
//! content-addressed result cache
//! ([`plim_compiler::cache::LruCache`]) keyed by the canonical structural
//! digest of the input graph ([`mig::canon::structural_digest`]) plus a
//! fingerprint of the request options.
//!
//! Because the digest is order-independent and Ω.I-normalized,
//! syntactically different dumps of the same circuit hit the same cache
//! entry; a warm request skips parsing-onward work entirely (no rewrite,
//! no compile, no verification) and returns the stored artifact.
//!
//! The crate also hosts the `plimc` command-line driver (moved here from
//! `plim-compiler` so the `serve`/`request` subcommands can link the
//! service) and splits the driver's compile path into the reusable
//! [`pipeline`] module — the daemon and the offline CLI run the *same*
//! functions, which is what makes served output byte-identical to offline
//! output.
//!
//! ## Modules
//!
//! * [`pipeline`] — parse / optimize / compile / verify / emit, shared by
//!   `plimc` offline mode and the daemon;
//! * [`protocol`] — the wire protocol (requests, responses, stats), built
//!   on [`plim_compiler::json`];
//! * [`server`] — the daemon: listener, connection threads, shard
//!   dispatch, cache;
//! * [`client`] — the one-call client used by `plimc request`.
//!
//! ## Wire protocol
//!
//! One JSON object per line, one response line per request; see
//! [`protocol`] for the exact fields. A session transcript:
//!
//! ```text
//! → {"op":"compile","format":"mig","source":"inputs a b\nn = maj(0, a, b)\noutput f = n\n"}
//! ← {"ok":true,"op":"compile","cached":false,"key":"…","instructions":2,"rams":1,"output":"01: …"}
//! → {"op":"stats"}
//! ← {"ok":true,"op":"stats","hits":0,"misses":1,…}
//! → {"op":"shutdown"}
//! ← {"ok":true,"op":"shutdown"}
//! ```

pub mod client;
pub mod pipeline;
pub mod protocol;
pub mod server;
