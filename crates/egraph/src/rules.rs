//! Bounded saturation of the MIG axiom set.
//!
//! Each iteration walks every e-class in id order, matches the axioms
//! against the canonical majority nodes, and applies every match
//! immediately (hashconsing makes re-derivations free). The walk order,
//! the match order inside a node, and the min-id union policy are all
//! deterministic, so a given (graph, budget) pair always produces the same
//! e-graph — and therefore the same extraction, byte for byte.
//!
//! The rule set (Ω names per Amarù et al. / the DAC'16 paper):
//!
//! | rule | shape | direction |
//! |------|-------|-----------|
//! | Ω.C  | `⟨a b c⟩ = ⟨σ(a b c)⟩` | baked into sorted children |
//! | Ω.I  | `!⟨a b c⟩ = ⟨ā b̄ c̄⟩` | baked into polarity normalization |
//! | Ω.M  | `⟨x x y⟩ = x`, `⟨x x̄ y⟩ = y` | applied at insertion |
//! | Ω.A  | `⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩` | both (self-inverse) |
//! | Ω.D  | `⟨x y ⟨u v z⟩⟩ = ⟨⟨x y u⟩ ⟨x y v⟩ z⟩` | both |
//! | Ω.R  | `⟨x y z⟩ = ⟨x y z_{x/ȳ}⟩` | one level deep |
//!
//! Growth is held in check by [`EgraphBudget`]: an e-node ceiling, an
//! iteration ceiling, and a *work* ceiling counted in deterministic graph
//! operations rather than wall-clock time, so budget stops are
//! reproducible across machines.

use crate::graph::{ClassNode, ClassSignal, EGraph};

/// Maximum majority spellings considered per child class when matching a
/// nested rule — bounds the quadratic blowup on classes that accumulate
/// many equivalent spellings.
const VIEW_LIMIT: usize = 4;

/// Growth limits for one saturation run.
///
/// All three axes are deterministic: e-nodes and iterations are structural
/// counts, and *work* is the e-graph's operation counter (adds, unions,
/// canonicalizations, match probes) — a machine-independent stand-in for a
/// time budget, so the same budget stops at the same point everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EgraphBudget {
    /// Stop once the memo holds this many e-nodes.
    pub max_enodes: usize,
    /// Stop after this many full rule iterations.
    pub max_iterations: usize,
    /// Stop once the work counter exceeds this many graph operations.
    pub max_work: u64,
}

impl Default for EgraphBudget {
    fn default() -> Self {
        EgraphBudget::for_effort(4)
    }
}

impl EgraphBudget {
    /// Budget scaled to a rewrite effort level (the `--effort` knob):
    /// iterations grow linearly, the node and work ceilings generously —
    /// effort 4, the paper's default, saturates every reduced-suite
    /// circuit and budget-stops gracefully on mem_ctrl-scale graphs.
    pub fn for_effort(effort: usize) -> Self {
        let effort = effort.clamp(1, 16);
        EgraphBudget {
            max_enodes: 20_000 + 10_000 * effort,
            max_iterations: 1 + effort,
            max_work: 1_500_000 * effort as u64,
        }
    }

    /// Caps the node and work ceilings relative to the seed graph's
    /// e-node count. The MIG axioms are explosive enough that a 30-node
    /// circuit would happily fill an effort-4 budget sized for mem_ctrl;
    /// capping proportionally keeps `--rewrite egraph` wall-clock
    /// commensurate with the input everywhere, while large graphs still
    /// get the full effort-scaled ceiling. Purely a function of its
    /// arguments, so determinism is unaffected.
    #[must_use]
    pub fn scaled_to(self, seed_enodes: usize) -> EgraphBudget {
        EgraphBudget {
            max_enodes: self.max_enodes.min(seed_enodes * 30 + 1_000),
            max_iterations: self.max_iterations,
            max_work: self.max_work.min(seed_enodes as u64 * 15_000 + 30_000),
        }
    }
}

/// Why a saturation run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A full iteration produced no new e-nodes and no new unions.
    Saturated,
    /// The e-node ceiling was hit mid-iteration.
    EnodeLimit,
    /// The iteration ceiling was reached.
    IterationLimit,
    /// The work ceiling was hit mid-iteration.
    WorkLimit,
}

impl StopReason {
    /// Short stable name for reports (`saturated`, `enodes`, `iterations`,
    /// `work`).
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Saturated => "saturated",
            StopReason::EnodeLimit => "enodes",
            StopReason::IterationLimit => "iterations",
            StopReason::WorkLimit => "work",
        }
    }
}

/// Runs rule iterations until saturation or a budget stop, returning the
/// iteration count and the stop reason. The graph is rebuilt (congruence
/// restored) before returning, whatever the stop reason.
pub fn saturate(g: &mut EGraph, budget: &EgraphBudget) -> (usize, StopReason) {
    let mut iterations = 0;
    loop {
        if iterations >= budget.max_iterations {
            return (iterations, StopReason::IterationLimit);
        }
        let enodes_before = g.num_enodes();
        let unions_before = g.union_count();
        let stop = run_rules_once(g, budget);
        g.rebuild();
        iterations += 1;
        if let Some(reason) = stop {
            return (iterations, reason);
        }
        if g.num_enodes() == enodes_before && g.union_count() == unions_before {
            return (iterations, StopReason::Saturated);
        }
    }
}

/// One iteration's matching snapshot: every root class's canonical
/// majority spellings, collected once up front.
///
/// Rules probe child classes for their spellings constantly; reading them
/// through [`EGraph::canonical_nodes`] per probe re-canonicalizes the
/// (growing, stale-entry-laden) class node lists every time, which makes
/// an iteration quadratic in the class sizes — matching effort the work
/// counter never saw, so the budget could not bind (the original symptom:
/// a four-input graph saturating for minutes). The snapshot makes one
/// iteration's matching cost linear in the snapshot size, every probe
/// O(`VIEW_LIMIT`), and charges the collection cost to the work counter.
/// Rules firing mid-iteration do not see each other's new nodes until the
/// next iteration — the same staleness egg accepts for the same reason.
struct Spellings {
    /// Indexed by snapshot root id: `(canonical key, parity)` per spelling,
    /// where the class representative is `Maj(key)` complemented by the
    /// parity. Non-root and leaf-only classes hold an empty list.
    per_class: Vec<Vec<([ClassSignal; 3], bool)>>,
}

impl Spellings {
    fn collect(g: &mut EGraph, snapshot: usize) -> Spellings {
        let mut per_class: Vec<Vec<([ClassSignal; 3], bool)>> = vec![Vec::new(); snapshot];
        let mut cost = 0u64;
        for id in 0..snapshot as u32 {
            if g.find(id).0 != id {
                continue;
            }
            let nodes = g.canonical_nodes(id);
            cost += nodes.len() as u64 + 1;
            per_class[id as usize] = nodes
                .into_iter()
                .filter_map(|node| match node {
                    ClassNode::Maj(key, par) => Some((key, par)),
                    _ => None,
                })
                .collect();
        }
        g.charge(cost);
        Spellings { per_class }
    }

    /// Majority spellings of `s`: up to `limit` triples, each computing
    /// exactly `s` (the class parity is pushed onto the children, as in
    /// [`EGraph::maj_views`]). Classes outside the snapshot have no views.
    fn views(&self, s: ClassSignal, limit: usize) -> Vec<[ClassSignal; 3]> {
        let Some(spellings) = self.per_class.get(s.class()) else {
            return Vec::new();
        };
        spellings
            .iter()
            .take(limit)
            .map(|&(key, par)| {
                let flip = par ^ s.is_complemented();
                key.map(|c| c.complement_if(flip))
            })
            .collect()
    }
}

fn over_budget(g: &EGraph, budget: &EgraphBudget) -> Option<StopReason> {
    if g.num_enodes() >= budget.max_enodes {
        Some(StopReason::EnodeLimit)
    } else if g.work() >= budget.max_work {
        Some(StopReason::WorkLimit)
    } else {
        None
    }
}

/// One pass of every rule over a snapshot of the classes. Returns the
/// budget stop that interrupted the pass, if any.
fn run_rules_once(g: &mut EGraph, budget: &EgraphBudget) -> Option<StopReason> {
    // Snapshot the id range and every class's spellings: nodes created by
    // this very pass are matched in the *next* iteration, keeping each
    // iteration's match set a function of the iteration-start graph.
    let snapshot = g.num_ids();
    let spellings = Spellings::collect(g, snapshot);
    for id in 0..snapshot {
        for index in 0..spellings.per_class[id].len() {
            let (key, par) = spellings.per_class[id][index];
            // The matched node's value, as a signal to union rewrites with.
            let target = ClassSignal::new(id, par);
            if let Some(stop) = over_budget(g, budget) {
                return Some(stop);
            }
            apply_associativity(g, &spellings, key, target);
            apply_distributivity_lr(g, &spellings, key, target);
            apply_distributivity_rl(g, &spellings, key, target);
            apply_relevance(g, &spellings, key, target);
        }
    }
    over_budget(g, budget)
}

/// The two children of `key` other than position `skip`.
fn others(key: [ClassSignal; 3], skip: usize) -> [ClassSignal; 2] {
    match skip {
        0 => [key[1], key[2]],
        1 => [key[0], key[2]],
        _ => [key[0], key[1]],
    }
}

/// Ω.A: `⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩` — swap a child of the outer node
/// with a child of the inner node across a shared `u`.
fn apply_associativity(g: &mut EGraph, sp: &Spellings, key: [ClassSignal; 3], target: ClassSignal) {
    for inner_pos in 0..3 {
        let views = sp.views(key[inner_pos], VIEW_LIMIT);
        let outer = others(key, inner_pos);
        for view in views {
            g.charge(1);
            for (u_idx, x_idx) in [(0usize, 1usize), (1, 0)] {
                let (u, x) = (outer[u_idx], outer[x_idx]);
                for m in 0..3 {
                    if view[m] != u {
                        continue;
                    }
                    let rem = others(view, m);
                    for (y, z) in [(rem[0], rem[1]), (rem[1], rem[0])] {
                        let inner = g.add([y, u, x]);
                        let rewritten = g.add([z, u, inner]);
                        g.union(rewritten, target);
                    }
                }
            }
        }
    }
}

/// Ω.D left-to-right: `⟨x y ⟨u v z⟩⟩ → ⟨⟨x y u⟩ ⟨x y v⟩ z⟩`. Grows the
/// graph — this is the direction greedy rewriting cannot afford, and the
/// one that unlocks cross-node sharing for the shrinking direction.
fn apply_distributivity_lr(
    g: &mut EGraph,
    sp: &Spellings,
    key: [ClassSignal; 3],
    target: ClassSignal,
) {
    for inner_pos in 0..3 {
        let views = sp.views(key[inner_pos], VIEW_LIMIT);
        let [x, y] = others(key, inner_pos);
        for view in views {
            g.charge(1);
            for z_pos in 0..3 {
                let z = view[z_pos];
                let [u, v] = others(view, z_pos);
                let left = g.add([x, y, u]);
                let right = g.add([x, y, v]);
                let rewritten = g.add([left, right, z]);
                g.union(rewritten, target);
            }
        }
    }
}

/// Ω.D right-to-left: `⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩` — the
/// shrinking direction, fired when two children share a pair.
fn apply_distributivity_rl(
    g: &mut EGraph,
    sp: &Spellings,
    key: [ClassSignal; 3],
    target: ClassSignal,
) {
    for (i, j) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let z_outer = key[3 - i - j];
        let views_i = sp.views(key[i], VIEW_LIMIT);
        let views_j = sp.views(key[j], VIEW_LIMIT);
        for vi in &views_i {
            for vj in &views_j {
                g.charge(1);
                for u_pos in 0..3 {
                    let u = vi[u_pos];
                    let [x, y] = others(*vi, u_pos);
                    // Does {x, y} appear in vj (as a multiset)? The
                    // leftover child is v.
                    let Some(v) = remove_pair(*vj, x, y) else {
                        continue;
                    };
                    let inner = g.add([u, v, z_outer]);
                    let rewritten = g.add([x, y, inner]);
                    g.union(rewritten, target);
                }
            }
        }
    }
}

/// Removes one occurrence each of `x` and `y` from the triple, returning
/// the remaining child — or `None` if either is missing.
fn remove_pair(triple: [ClassSignal; 3], x: ClassSignal, y: ClassSignal) -> Option<ClassSignal> {
    let mut rest: Vec<ClassSignal> = triple.to_vec();
    let xi = rest.iter().position(|&c| c == x)?;
    rest.remove(xi);
    let yi = rest.iter().position(|&c| c == y)?;
    rest.remove(yi);
    Some(rest[0])
}

/// Ω.R (relevance, one level): in `⟨x y z⟩`, occurrences of `x` inside `z`
/// may be replaced by `ȳ` (if `x` breaks the tie, `x` and `y` disagree).
fn apply_relevance(g: &mut EGraph, sp: &Spellings, key: [ClassSignal; 3], target: ClassSignal) {
    for z_pos in 0..3 {
        let views = sp.views(key[z_pos], VIEW_LIMIT);
        let outer = others(key, z_pos);
        for view in views {
            g.charge(1);
            for (x, y) in [(outer[0], outer[1]), (outer[1], outer[0])] {
                for m in 0..3 {
                    if view[m] != x {
                        continue;
                    }
                    let mut replaced = view;
                    replaced[m] = !y;
                    let inner = g.add(replaced);
                    let rewritten = g.add([x, y, inner]);
                    g.union(rewritten, target);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Mig;

    fn saturated_graph(build: impl Fn(&mut Mig)) -> (EGraph, usize, StopReason) {
        let mut mig = Mig::new();
        build(&mut mig);
        let mut g = EGraph::from_mig(&mig);
        let (iterations, stop) = saturate(&mut g, &EgraphBudget::for_effort(2));
        (g, iterations, stop)
    }

    #[test]
    fn associativity_identifies_the_rotated_form() {
        // ⟨x u ⟨y u z⟩⟩ and ⟨z u ⟨y u x⟩⟩ must land in one class.
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let u = mig.add_input("u");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let lhs_inner = mig.maj(y, u, z);
        let lhs = mig.maj(x, u, lhs_inner);
        let rhs_inner = mig.maj(y, u, x);
        let rhs = mig.maj(z, u, rhs_inner);
        mig.add_output("l", lhs);
        mig.add_output("r", rhs);
        let mut g = EGraph::from_mig(&mig);
        let l = g.outputs()[0].1;
        let r = g.outputs()[1].1;
        assert_ne!(g.canonical(l), g.canonical(r), "distinct before saturation");
        saturate(&mut g, &EgraphBudget::for_effort(2));
        assert_eq!(g.canonical(l), g.canonical(r));
    }

    #[test]
    fn distributivity_identifies_both_sides() {
        // ⟨x y ⟨u v z⟩⟩ = ⟨⟨x y u⟩ ⟨x y v⟩ z⟩.
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let z = mig.add_input("z");
        let inner = mig.maj(u, v, z);
        let lhs = mig.maj(x, y, inner);
        let a = mig.maj(x, y, u);
        let b = mig.maj(x, y, v);
        let rhs = mig.maj(a, b, z);
        mig.add_output("l", lhs);
        mig.add_output("r", rhs);
        let mut g = EGraph::from_mig(&mig);
        let l = g.outputs()[0].1;
        let r = g.outputs()[1].1;
        saturate(&mut g, &EgraphBudget::for_effort(2));
        assert_eq!(g.canonical(l), g.canonical(r));
    }

    #[test]
    fn relevance_identifies_the_substituted_form() {
        // ⟨x y ⟨x u v⟩⟩ = ⟨x y ⟨ȳ u v⟩⟩.
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let inner1 = mig.maj(x, u, v);
        let lhs = mig.maj(x, y, inner1);
        let inner2 = mig.maj(!y, u, v);
        let rhs = mig.maj(x, y, inner2);
        mig.add_output("l", lhs);
        mig.add_output("r", rhs);
        let mut g = EGraph::from_mig(&mig);
        let l = g.outputs()[0].1;
        let r = g.outputs()[1].1;
        saturate(&mut g, &EgraphBudget::for_effort(2));
        assert_eq!(g.canonical(l), g.canonical(r));
    }

    #[test]
    fn saturation_is_deterministic_and_budget_bounded() {
        let build = |mig: &mut Mig| {
            let xs = mig.add_inputs("x", 6);
            let mut acc = xs[0];
            for &x in &xs[1..] {
                acc = mig.xor(acc, x);
            }
            mig.add_output("parity", acc);
        };
        let (g1, i1, s1) = saturated_graph(build);
        let (g2, i2, s2) = saturated_graph(build);
        assert_eq!(i1, i2);
        assert_eq!(s1, s2);
        assert_eq!(g1.num_enodes(), g2.num_enodes());
        assert_eq!(g1.union_count(), g2.union_count());
        assert_eq!(g1.work(), g2.work());
    }

    #[test]
    fn tight_budgets_stop_early_with_the_right_reason() {
        let build = |mig: &mut Mig| {
            let xs = mig.add_inputs("x", 5);
            let mut acc = xs[0];
            for &x in &xs[1..] {
                acc = mig.xor(acc, x);
            }
            mig.add_output("f", acc);
        };
        let mut mig = Mig::new();
        build(&mut mig);

        let mut g = EGraph::from_mig(&mig);
        let tiny_nodes = EgraphBudget {
            max_enodes: g.num_enodes() + 1,
            max_iterations: 100,
            max_work: u64::MAX,
        };
        let (_, stop) = saturate(&mut g, &tiny_nodes);
        assert_eq!(stop, StopReason::EnodeLimit);

        let mut g = EGraph::from_mig(&mig);
        let tiny_work = EgraphBudget {
            max_enodes: usize::MAX,
            max_iterations: 100,
            max_work: 10,
        };
        let (_, stop) = saturate(&mut g, &tiny_work);
        assert_eq!(stop, StopReason::WorkLimit);

        let mut g = EGraph::from_mig(&mig);
        let no_iterations = EgraphBudget {
            max_enodes: usize::MAX,
            max_iterations: 0,
            max_work: u64::MAX,
        };
        let (iterations, stop) = saturate(&mut g, &no_iterations);
        assert_eq!((iterations, stop), (0, StopReason::IterationLimit));
    }

    #[test]
    fn stop_reasons_have_stable_names() {
        assert_eq!(StopReason::Saturated.name(), "saturated");
        assert_eq!(StopReason::EnodeLimit.name(), "enodes");
        assert_eq!(StopReason::IterationLimit.name(), "iterations");
        assert_eq!(StopReason::WorkLimit.name(), "work");
    }
}
