//! Extraction: turning a saturated e-graph back into one concrete MIG.
//!
//! The fast path is a greedy bottom-up extractor: a per-e-class cost table
//! relaxed to a fixpoint, choosing for every class the cheapest canonical
//! node under a per-node weight. Several [`ExtractObjective`]s produce
//! structurally different candidates; the compiling cost function in
//! [`crate::optimize`] then scores each candidate by actually compiling it
//! and keeps the cheapest *artifact*, so the per-node weights only have to
//! be good candidate generators, not perfect cost models.

use mig::{Mig, Signal};

use crate::graph::{ClassNode, EGraph};

/// Per-node weighting used by the greedy extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractObjective {
    /// Minimize majority-node count (tree-cost approximation).
    Nodes,
    /// Minimize an RM3 instruction estimate: majority nodes with two or
    /// three complemented non-constant children need extra instructions
    /// and RRAMs, so they weigh almost twice as much.
    Rm3,
    /// Minimize depth (longest root-to-leaf chain), breaking the tie
    /// toward fewer nodes only implicitly. Produces shallow, wide
    /// candidates the other two objectives never propose.
    Depth,
}

impl ExtractObjective {
    /// Every objective, in the deterministic candidate-generation order.
    pub const ALL: [ExtractObjective; 3] = [
        ExtractObjective::Nodes,
        ExtractObjective::Rm3,
        ExtractObjective::Depth,
    ];

    fn weight(self, key: [crate::graph::ClassSignal; 3]) -> u64 {
        match self {
            ExtractObjective::Nodes | ExtractObjective::Depth => 4,
            ExtractObjective::Rm3 => {
                let complemented = key
                    .iter()
                    .filter(|c| c.is_complemented() && c.class() != 0)
                    .count();
                if complemented >= 2 {
                    7
                } else {
                    4
                }
            }
        }
    }

    fn combine(self, weight: u64, children: [u64; 3]) -> u64 {
        match self {
            ExtractObjective::Depth => {
                weight.saturating_add(children.into_iter().max().unwrap_or(0))
            }
            _ => children
                .into_iter()
                .fold(weight, |acc, c| acc.saturating_add(c)),
        }
    }
}

/// Greedily extracts one MIG from the e-graph under the given objective.
///
/// The cost table is **memoized per e-class**: every class's cheapest
/// (cost, node) choice is computed once in the fixpoint below and reused
/// by every parent — the table *is* the memo. Returns `None` only in
/// pathological cases (a cost fixpoint that refuses to converge or a
/// cyclic choice, neither of which sound rules can produce); callers fall
/// back to their baseline graph.
pub fn extract(g: &EGraph, objective: ExtractObjective) -> Option<Mig> {
    let n = g.num_ids();
    // Canonical node lists are stable during extraction; compute them once.
    let nodes: Vec<Vec<ClassNode>> = (0..n as u32)
        .map(|id| {
            if g.find(id).0 == id {
                g.canonical_nodes(id)
            } else {
                Vec::new()
            }
        })
        .collect();

    // Relax per-class costs to a fixpoint. Ids are allocated bottom-up, so
    // an in-order pass converges in roughly graph-depth rounds.
    let mut cost: Vec<u64> = vec![u64::MAX; n];
    for _pass in 0..n.max(8) {
        let mut changed = false;
        for (id, class_nodes) in nodes.iter().enumerate() {
            for node in class_nodes {
                let candidate = match node {
                    ClassNode::Const(_) | ClassNode::Input(_, _) => 0,
                    ClassNode::Maj(key, _) => {
                        let children = key.map(|c| cost[c.class()]);
                        if children.contains(&u64::MAX) {
                            continue;
                        }
                        objective.combine(objective.weight(*key), children)
                    }
                };
                if candidate < cost[id] {
                    cost[id] = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final choice per class: first node achieving the fixpoint minimum
    // (deterministic: node lists are in insertion order).
    let choice: Vec<Option<ClassNode>> = nodes
        .iter()
        .enumerate()
        .map(|(id, class_nodes)| {
            let mut best: Option<(u64, ClassNode)> = None;
            for node in class_nodes {
                let value = match node {
                    ClassNode::Const(_) | ClassNode::Input(_, _) => 0,
                    ClassNode::Maj(key, _) => {
                        let children = key.map(|c| cost[c.class()]);
                        if children.contains(&u64::MAX) {
                            continue;
                        }
                        objective.combine(objective.weight(*key), children)
                    }
                };
                if best.is_none_or(|(b, _)| value < b) {
                    best = Some((value, *node));
                }
            }
            let _ = id;
            best.map(|(_, node)| node)
        })
        .collect();

    materialize(g, &choice)
}

/// Builds the concrete MIG for a per-class node choice.
fn materialize(g: &EGraph, choice: &[Option<ClassNode>]) -> Option<Mig> {
    let mut mig = Mig::with_capacity(g.num_enodes());
    let inputs: Vec<Signal> = g
        .input_names()
        .iter()
        .map(|name| mig.add_input(name))
        .collect();

    let n = choice.len();
    // built[c] = signal of class c's representative; awaiting = on the DFS
    // stack with children pending (used as the cycle guard).
    let mut built: Vec<Option<Signal>> = vec![None; n];
    let mut awaiting: Vec<bool> = vec![false; n];
    let mut resolved: Vec<(String, Signal)> = Vec::with_capacity(g.outputs().len());

    for (name, out) in g.outputs() {
        let out = g.canonical(*out);
        let root = out.class();
        let mut stack: Vec<usize> = vec![root];
        while let Some(&class) = stack.last() {
            if built[class].is_some() {
                awaiting[class] = false;
                stack.pop();
                continue;
            }
            match choice[class]? {
                ClassNode::Const(par) => {
                    built[class] = Some(Signal::constant(par));
                }
                ClassNode::Input(index, par) => {
                    built[class] = Some(inputs[index as usize].complement_if(par));
                }
                ClassNode::Maj(key, par) => {
                    let mut pending = false;
                    for child in key {
                        let cc = child.class();
                        if built[cc].is_none() {
                            if awaiting[cc] {
                                // A cycle in the chosen nodes: bail out,
                                // the caller falls back to its baseline.
                                return None;
                            }
                            stack.push(cc);
                            pending = true;
                        }
                    }
                    if pending {
                        awaiting[class] = true;
                        continue;
                    }
                    let sigs =
                        key.map(|c| built[c.class()].unwrap().complement_if(c.is_complemented()));
                    let m = mig.maj(sigs[0], sigs[1], sigs[2]);
                    built[class] = Some(m.complement_if(par));
                }
            }
        }
        resolved.push((
            name.clone(),
            built[root].unwrap().complement_if(out.is_complemented()),
        ));
    }
    for (name, signal) in resolved {
        mig.add_output(&name, signal);
    }
    Some(mig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{saturate, EgraphBudget};

    fn check_equiv(a: &Mig, b: &Mig) {
        assert!(mig::equiv::check_equivalence(a, b, 64, 7)
            .expect("interfaces match")
            .holds());
    }

    #[test]
    fn extraction_round_trips_a_plain_graph() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, !b, c);
        let m2 = mig.maj(m, b, !c);
        mig.add_output("f", m2);
        mig.add_output("g", !m);
        let g = EGraph::from_mig(&mig);
        for objective in ExtractObjective::ALL {
            let out = extract(&g, objective).expect("extraction succeeds");
            assert_eq!(out.num_inputs(), 3);
            assert_eq!(out.num_outputs(), 2);
            check_equiv(&mig, &out);
            assert!(out.num_majority_nodes() <= mig.num_majority_nodes());
        }
    }

    #[test]
    fn extraction_after_saturation_stays_equivalent_and_never_grows() {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 5);
        let m1 = mig.maj(xs[0], xs[1], xs[2]);
        let m2 = mig.maj(m1, xs[3], xs[4]);
        let m3 = mig.maj(m1, !m2, xs[0]);
        let m4 = mig.maj(m2, m3, xs[1]);
        mig.add_output("f", m4);
        let mut g = EGraph::from_mig(&mig);
        saturate(&mut g, &EgraphBudget::for_effort(2));
        for objective in ExtractObjective::ALL {
            let out = extract(&g, objective).expect("extraction succeeds");
            check_equiv(&mig, &out);
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let build = || {
            let mut mig = Mig::new();
            let xs = mig.add_inputs("x", 6);
            let mut acc = xs[0];
            for &x in &xs[1..] {
                acc = mig.xor(acc, x);
            }
            mig.add_output("f", acc);
            mig
        };
        let one = {
            let mut g = EGraph::from_mig(&build());
            saturate(&mut g, &EgraphBudget::for_effort(2));
            extract(&g, ExtractObjective::Rm3).unwrap()
        };
        let two = {
            let mut g = EGraph::from_mig(&build());
            saturate(&mut g, &EgraphBudget::for_effort(2));
            extract(&g, ExtractObjective::Rm3).unwrap()
        };
        assert_eq!(mig::io::write_mig(&one), mig::io::write_mig(&two));
    }
}
