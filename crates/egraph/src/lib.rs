//! # plim-egraph — equality saturation for the MIG → PLiM flow
//!
//! The arena rewriter (Algorithm 1) applies the MIG axioms greedily and
//! destructively: every step must pay for itself immediately, so rewrites
//! that only pay off two or three steps later are never found. This crate
//! is the non-greedy counterpart, an offline equality-saturation engine in
//! the spirit of egg (Willsey et al., POPL 2021):
//!
//! 1. the rewritten MIG is loaded into a hashconsed [`EGraph`] whose
//!    union-find tracks complement parity (Ω.I is free) and whose node
//!    canonicalization bakes in Ω.C and Ω.M;
//! 2. the remaining axioms — associativity Ω.A, distributivity Ω.D in
//!    *both* directions, one-level relevance Ω.R — are saturated under a
//!    deterministic [`EgraphBudget`] (e-node / iteration / work ceilings,
//!    no wall-clock anywhere);
//! 3. greedy bottom-up extraction (cost table memoized per e-class)
//!    proposes one candidate MIG per [`ExtractObjective`];
//! 4. a compiling cost function scores every candidate by *actually
//!    compiling it* — [`plim_compiler::compile_full`] plus the active
//!    backend's [`plim_compiler::Cost`] — in parallel across the
//!    `plim-parallel` pool, and keeps the lexicographically cheapest
//!    (#I, #R, wear) artifact that is admissible (no axis worse than the
//!    arena baseline's).
//!
//! Because the arena baseline is always in the candidate set (it is the
//! fallback), [`optimize`] is **never worse than the arena engine** on any
//! cost axis, by construction.
//!
//! The engine is wired into the toolchain as the third
//! [`plim_compiler::RewriteMode`]: call [`install`] once at startup
//! (mirroring `plim_backends::install()`) and `--rewrite egraph` works
//! everywhere — `plimc`, `plimd`, the batch driver, and the benches.

mod extract;
mod graph;
mod rules;

use std::collections::HashSet;

pub use extract::{extract, ExtractObjective};
pub use graph::{Canon, ClassNode, ClassSignal, EGraph, ENode};
pub use rules::{saturate, EgraphBudget, StopReason};

use mig::Mig;
use plim_compiler::batch::{BenchRun, Circuit, PAPER_EFFORT};
use plim_compiler::{compile, compile_full, CompilerOptions, OptLevel, RewriteMode};
use plim_parallel::{par_map, Parallelism};

/// Raw (pre-rewrite) graphs up to this many nodes are also absorbed into
/// the e-graph, giving saturation the original structure alongside the
/// greedily rewritten one. Larger graphs skip this: the rewritten form
/// alone keeps the budget productive.
const RAW_ABSORB_LIMIT: usize = 3_000;

/// What one [`optimize_with_stats`] run did, for bench reports and the
/// `--rewrite egraph` saturation-stats lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturationStats {
    /// E-nodes after loading the input graph(s), before any rule fired.
    pub initial_enodes: usize,
    /// E-nodes when saturation stopped.
    pub final_enodes: usize,
    /// Live e-classes when saturation stopped.
    pub classes: usize,
    /// Rule iterations run.
    pub iterations: usize,
    /// Why saturation stopped.
    pub stop: StopReason,
    /// Distinct extraction candidates scored by compilation.
    pub candidates_scored: usize,
    /// Whether a candidate beat the arena baseline's compiled cost.
    pub improved: bool,
}

impl SaturationStats {
    /// One-line human-readable summary
    /// (`enodes 120→340, classes 95, 3 iters, stop=saturated, 2 candidates, improved`).
    pub fn summary(&self) -> String {
        format!(
            "enodes {}→{}, classes {}, {} iters, stop={}, {} candidates, {}",
            self.initial_enodes,
            self.final_enodes,
            self.classes,
            self.iterations,
            self.stop.name(),
            self.candidates_scored,
            if self.improved {
                "improved"
            } else {
                "kept arena"
            }
        )
    }
}

/// Lexicographic compiled cost of a candidate under the active backend:
/// (#I, #R/footprint, wear).
fn compiled_cost(mig: &Mig, options: CompilerOptions) -> (u64, u64, u64) {
    let compilation = compile_full(mig, options);
    let cost = options.target.backend().cost(&compilation.ir);
    (
        cost.instructions as u64,
        u64::from(cost.footprint),
        cost.wear,
    )
}

/// Post-extraction cleanup: polarity normalization moved complements
/// around freely, so push them back into the RM3-friendly ≤1-complement
/// form the translator's cost model expects, then drop dangling nodes.
fn polish(mig: &Mig) -> Mig {
    let (once, _) = mig::rewrite::pass_inverter_reduce(mig);
    let (twice, _) = mig::rewrite::pass_inverter_reduce(&once);
    twice.cleaned()
}

/// Equality-saturation optimization of `baseline` (the arena-rewritten
/// graph), returning the chosen MIG and the run's [`SaturationStats`].
///
/// `raw` is the pre-rewrite input graph; small raw graphs are absorbed
/// into the e-graph as an extra structural seed. `effort` scales the
/// saturation budget (see [`EgraphBudget::for_effort`]); `options` selects
/// the backend whose compiled [`plim_compiler::Cost`] judges candidates.
///
/// Deterministic end to end: same inputs, effort, and options ⇒
/// byte-identical output graph.
pub fn optimize_with_stats(
    raw: &Mig,
    baseline: &Mig,
    effort: usize,
    options: CompilerOptions,
) -> (Mig, SaturationStats) {
    let mut g = EGraph::from_mig(baseline);
    if raw.len() <= RAW_ABSORB_LIMIT {
        g.absorb_equivalent(raw);
    }
    let initial_enodes = g.num_enodes();
    let budget = EgraphBudget::for_effort(effort.max(1)).scaled_to(initial_enodes);
    let (iterations, stop) = saturate(&mut g, &budget);

    // Candidate generation: one greedy extraction per objective, polished
    // and deduplicated (identical candidates would be scored twice).
    let baseline_text = mig::io::write_mig(baseline);
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(baseline_text);
    let mut candidates: Vec<Mig> = Vec::new();
    for objective in ExtractObjective::ALL {
        if let Some(extracted) = extract(&g, objective) {
            let polished = polish(&extracted);
            if seen.insert(mig::io::write_mig(&polished)) {
                candidates.push(polished);
            }
        }
    }

    // Compiling cost function: score every candidate by replaying it
    // through the full lower → optimize pipeline, fanned out across the
    // worker pool. The baseline is scored alongside; a candidate wins only
    // if *no* axis regresses and the lexicographic (#I, #R, wear) triple
    // strictly improves.
    let base_cost = compiled_cost(baseline, options);
    let scored = par_map(&candidates, Parallelism::Auto, |_, candidate| {
        compiled_cost(candidate, options)
    });
    let mut best: Option<(usize, (u64, u64, u64))> = None;
    for (index, &cost) in scored.iter().enumerate() {
        let admissible = cost.0 <= base_cost.0 && cost.1 <= base_cost.1 && cost.2 <= base_cost.2;
        if admissible && cost < base_cost && best.is_none_or(|(_, b)| cost < b) {
            best = Some((index, cost));
        }
    }

    let stats = SaturationStats {
        initial_enodes,
        final_enodes: g.num_enodes(),
        classes: g.num_classes(),
        iterations,
        stop,
        candidates_scored: candidates.len(),
        improved: best.is_some(),
    };
    let chosen = match best {
        Some((index, _)) => candidates.swap_remove(index),
        None => baseline.clone(),
    };
    (chosen, stats)
}

/// [`optimize_with_stats`] without the stats — the exact signature of the
/// [`plim_compiler::EgraphOptimizer`] hook.
pub fn optimize(raw: &Mig, baseline: &Mig, effort: usize, options: CompilerOptions) -> Mig {
    optimize_with_stats(raw, baseline, effort, options).0
}

/// Registers [`optimize`] as the engine behind
/// [`plim_compiler::RewriteMode::Egraph`]. Idempotent; `plimc`, `plimd`
/// and the bench harnesses call it at startup, mirroring
/// `plim_backends::install()`.
pub fn install() {
    plim_compiler::install_egraph_optimizer(optimize);
}

/// Fills the `egraph_instructions` / `egraph_rams` columns of every record
/// of a bench run: each circuit is re-optimized through the e-graph at the
/// paper's rewrite effort and compiled at `-O2` for the default RM3
/// target, fanned out across `parallelism`. `circuits` must be the same
/// slice the run was produced from (mismatches leave the records on their
/// "skipped" sentinel 0).
pub fn annotate_bench(run: &mut BenchRun, circuits: &[Circuit], parallelism: Parallelism) {
    if run.records.is_empty() || circuits.len() != run.records.len() {
        return;
    }
    let options = CompilerOptions::new()
        .opt(OptLevel::O2)
        .rewrite(RewriteMode::Egraph);
    let results = par_map(circuits, parallelism, |_, circuit| {
        let baseline = mig::rewrite::rewrite(&circuit.mig, PAPER_EFFORT);
        let chosen = optimize(&circuit.mig, &baseline, PAPER_EFFORT, options);
        let compiled = compile(&chosen, options);
        (
            compiled.stats.instructions as u64,
            u64::from(compiled.stats.rams),
        )
    });
    for (record, (instructions, rams)) in run.records.iter_mut().zip(results) {
        record.egraph_instructions = instructions;
        record.egraph_rams = rams;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Signal;

    fn fig3b() -> Mig {
        let mut mig = Mig::new();
        let i1 = mig.add_input("i1");
        let i2 = mig.add_input("i2");
        let i3 = mig.add_input("i3");
        let n1 = mig.maj(Signal::FALSE, i1, i2);
        let n2 = mig.maj(Signal::TRUE, !i2, i3);
        let n3 = mig.maj(i1, i2, i3);
        let n4 = mig.maj(Signal::TRUE, n1, i3);
        let n5 = mig.maj(n1, !n2, n3);
        let n6 = mig.maj(n4, !n5, n1);
        mig.add_output("f", n6);
        mig
    }

    #[test]
    fn optimize_is_equivalent_and_never_worse_than_the_baseline() {
        let raw = fig3b();
        let baseline = mig::rewrite::rewrite(&raw, 4);
        let options = CompilerOptions::new().opt(OptLevel::O2);
        let (chosen, stats) = optimize_with_stats(&raw, &baseline, 4, options);
        assert!(mig::equiv::check_equivalence(&raw, &chosen, 64, 3)
            .expect("interfaces match")
            .holds());
        let base = compiled_cost(&baseline, options);
        let ours = compiled_cost(&chosen, options);
        assert!(
            ours <= base,
            "egraph result must not regress: {ours:?} vs {base:?}"
        );
        assert!(stats.iterations >= 1);
        assert!(stats.final_enodes >= stats.initial_enodes);
        assert!(!stats.summary().is_empty());
    }

    #[test]
    fn optimize_is_deterministic() {
        let raw = fig3b();
        let baseline = mig::rewrite::rewrite(&raw, 2);
        let options = CompilerOptions::new().opt(OptLevel::O2);
        let one = optimize(&raw, &baseline, 2, options);
        let two = optimize(&raw, &baseline, 2, options);
        assert_eq!(mig::io::write_mig(&one), mig::io::write_mig(&two));
    }

    #[test]
    fn install_registers_the_hook() {
        install();
        install(); // idempotent
        let hook = plim_compiler::egraph_optimizer().expect("hook registered");
        let raw = fig3b();
        let baseline = mig::rewrite::rewrite(&raw, 2);
        let out = hook(&raw, &baseline, 2, CompilerOptions::new());
        assert!(mig::equiv::check_equivalence(&raw, &out, 64, 5)
            .expect("interfaces match")
            .holds());
    }
}
