//! The hashconsed e-graph over MIG nodes.
//!
//! Structure follows egg (Willsey et al., POPL 2021): a union-find over
//! e-class ids, a hashcons memo from canonical e-nodes to e-classes, and a
//! parent-congruence worklist that restores the congruence invariant after
//! merges. Two MIG-specific twists:
//!
//! * **Complement edges.** MIG edges carry inverters, so class references
//!   are [`ClassSignal`]s (class id + complement bit) and the union-find
//!   tracks a *parity* per entry — `x` and `!x` share one e-class, which
//!   bakes the inverter-propagation axiom Ω.I into the representation the
//!   same way [`mig::Signal`] bakes it into the graph.
//! * **Canonical majority nodes.** Children are stored sorted (Ω.C) and
//!   triples are polarity-normalized: of the pair `⟨a b c⟩` /
//!   `⟨ā b̄ c̄⟩ = !⟨a b c⟩` only the lexicographically smaller spelling is
//!   memoized, with the complement pushed onto the returned signal. The
//!   trivial-majority simplifications Ω.M (`⟨x x y⟩ = x`, `⟨x x̄ y⟩ = y`)
//!   are applied at insertion, so no e-class ever holds a reducible node.

use std::collections::HashMap;
use std::fmt;
use std::ops::Not;

use mig::{Mig, MigNode};

/// A reference to an e-class with an optional complement attribute — the
/// e-graph's analogue of [`mig::Signal`]. Packs `class << 1 | complement`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassSignal(u32);

impl ClassSignal {
    /// Creates a signal referencing `class`, complemented if `complement`.
    #[inline]
    pub fn new(class: usize, complement: bool) -> Self {
        debug_assert!(class <= (u32::MAX >> 1) as usize);
        ClassSignal((class as u32) << 1 | complement as u32)
    }

    /// The e-class this signal refers to.
    #[inline]
    pub fn class(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the reference carries a complement attribute.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// XORs the complement attribute with `flip`.
    #[inline]
    pub fn complement_if(self, flip: bool) -> Self {
        ClassSignal(self.0 ^ flip as u32)
    }
}

impl Not for ClassSignal {
    type Output = ClassSignal;

    #[inline]
    fn not(self) -> ClassSignal {
        ClassSignal(self.0 ^ 1)
    }
}

impl fmt::Debug for ClassSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!c{}", self.class())
        } else {
            write!(f, "c{}", self.class())
        }
    }
}

/// An e-node: one operator applied to e-class references.
///
/// `Maj` children are canonical — sorted, referencing e-class
/// representatives, polarity-normalized — whenever the node sits in the
/// hashcons memo. Nodes listed inside an e-class may go stale after merges;
/// [`EGraph::canonical_nodes`] re-canonicalizes on read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ENode {
    /// The constant-zero leaf.
    Const,
    /// Primary input `i` (index into [`EGraph::input_names`]).
    Input(u32),
    /// Majority-of-three over e-class signals.
    Maj([ClassSignal; 3]),
}

/// Result of canonicalizing a majority triple: either the node collapsed
/// via Ω.M to an existing signal, or a canonical key plus the complement
/// the polarity normalization pushed onto the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Canon {
    /// The triple was trivial; its value is this existing signal.
    Simplified(ClassSignal),
    /// A canonical memo key; the node's value is `Maj(key)` complemented
    /// by the flag.
    Node([ClassSignal; 3], bool),
}

/// An e-node as read back out of a class: the canonical spelling plus the
/// parity of its value relative to the class representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassNode {
    /// The constant-zero leaf (`true` ⇒ the representative is constant one).
    Const(bool),
    /// Primary input (`true` ⇒ the representative is its complement).
    Input(u32, bool),
    /// Canonical majority key; the representative is `Maj(key)`
    /// complemented by the flag.
    Maj([ClassSignal; 3], bool),
}

#[derive(Debug, Default)]
struct EClass {
    /// E-nodes whose value equals the class representative complemented by
    /// the stored parity. Entries may be stale (non-canonical) after
    /// merges; reads go through [`EGraph::canonical_nodes`].
    nodes: Vec<(ENode, bool)>,
    /// Memoized `Maj` keys that reference this class as a child — the
    /// congruence-repair worklist fodder.
    parents: Vec<ENode>,
}

/// The e-graph: union-find + hashcons + congruence worklist.
#[derive(Debug)]
pub struct EGraph {
    /// Union-find parent per class id (self-parent at roots).
    parent: Vec<u32>,
    /// Complement of this id's representative relative to its parent's.
    parity: Vec<bool>,
    classes: Vec<EClass>,
    memo: HashMap<ENode, ClassSignal>,
    /// Root ids whose parents need congruence repair.
    dirty: Vec<u32>,
    /// Primary input names, in the order of the source MIG.
    input_names: Vec<String>,
    input_classes: Vec<ClassSignal>,
    const_class: ClassSignal,
    outputs: Vec<(String, ClassSignal)>,
    /// Deterministic work counter: every add/union/canonicalization ticks
    /// it once, giving the saturation budget a wall-clock-free notion of
    /// effort.
    work: u64,
    unions: u64,
}

impl EGraph {
    /// Builds an e-graph holding exactly the nodes of `mig` (reachable or
    /// not), with one e-class per structurally distinct node.
    pub fn from_mig(mig: &Mig) -> EGraph {
        let mut g = EGraph {
            parent: Vec::new(),
            parity: Vec::new(),
            classes: Vec::new(),
            memo: HashMap::new(),
            dirty: Vec::new(),
            input_names: (0..mig.num_inputs())
                .map(|i| mig.input_name(i).to_string())
                .collect(),
            input_classes: Vec::new(),
            const_class: ClassSignal::new(0, false),
            outputs: Vec::new(),
            work: 0,
            unions: 0,
        };
        g.const_class = g.new_class(ENode::Const);
        g.memo.insert(ENode::Const, g.const_class);
        for i in 0..mig.num_inputs() {
            let node = ENode::Input(i as u32);
            let class = g.new_class(node);
            g.memo.insert(node, class);
            g.input_classes.push(class);
        }
        let map = g.insert_nodes(mig);
        g.outputs = mig
            .outputs()
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    map[s.node().index()].complement_if(s.is_complemented()),
                )
            })
            .collect();
        g
    }

    /// Inserts every majority node of `other` (which must have the same
    /// inputs, in the same order) and unions its outputs pairwise with the
    /// existing ones — asserting, structurally, that the two graphs compute
    /// the same functions. Returns `false` (changing nothing) when the
    /// interfaces don't line up.
    pub fn absorb_equivalent(&mut self, other: &Mig) -> bool {
        if other.num_inputs() != self.input_names.len() || other.num_outputs() != self.outputs.len()
        {
            return false;
        }
        let map = self.insert_nodes(other);
        for (index, (_, s)) in other.outputs().iter().enumerate() {
            let theirs = map[s.node().index()].complement_if(s.is_complemented());
            let ours = self.outputs[index].1;
            self.union(ours, theirs);
        }
        self.rebuild();
        true
    }

    /// Maps every node of `mig` into the e-graph, returning the signal per
    /// arena index.
    fn insert_nodes(&mut self, mig: &Mig) -> Vec<ClassSignal> {
        let mut map: Vec<ClassSignal> = Vec::with_capacity(mig.len());
        for id in mig.node_ids() {
            let sig = match mig.node(id) {
                MigNode::Constant => self.const_class,
                MigNode::Input(i) => self.input_classes[*i as usize],
                MigNode::Majority(children) => {
                    let cs =
                        children.map(|c| map[c.node().index()].complement_if(c.is_complemented()));
                    self.add(cs)
                }
            };
            map.push(sig);
        }
        map
    }

    fn new_class(&mut self, node: ENode) -> ClassSignal {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.parity.push(false);
        self.classes.push(EClass {
            nodes: vec![(node, false)],
            parents: Vec::new(),
        });
        ClassSignal::new(id as usize, false)
    }

    /// Number of class ids ever allocated (merged ids included).
    pub fn num_ids(&self) -> usize {
        self.parent.len()
    }

    /// Number of live (root) e-classes.
    pub fn num_classes(&self) -> usize {
        (0..self.parent.len() as u32)
            .filter(|&id| self.find(id).0 == id)
            .count()
    }

    /// Number of memoized e-nodes.
    pub fn num_enodes(&self) -> usize {
        self.memo.len()
    }

    /// Total unions performed so far (saturation convergence signal).
    pub fn union_count(&self) -> u64 {
        self.unions
    }

    /// The deterministic work counter (see [`crate::EgraphBudget`]).
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Primary input names, in source order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// The primary outputs as (name, signal) pairs.
    pub fn outputs(&self) -> &[(String, ClassSignal)] {
        &self.outputs
    }

    /// Union-find root and accumulated parity of `id` (no path mutation,
    /// usable from `&self` contexts).
    pub fn find(&self, id: u32) -> (u32, bool) {
        let mut cur = id;
        let mut flip = false;
        while self.parent[cur as usize] != cur {
            flip ^= self.parity[cur as usize];
            cur = self.parent[cur as usize];
        }
        (cur, flip)
    }

    /// Path-compressing variant of [`EGraph::find`].
    fn find_mut(&mut self, id: u32) -> (u32, bool) {
        let (root, total) = self.find(id);
        // Second pass: point every entry straight at the root with its
        // cumulative parity.
        let mut cur = id;
        let mut flip = total;
        while self.parent[cur as usize] != root && self.parent[cur as usize] != cur {
            let next = self.parent[cur as usize];
            let next_flip = flip ^ self.parity[cur as usize];
            self.parent[cur as usize] = root;
            self.parity[cur as usize] = flip;
            cur = next;
            flip = next_flip;
        }
        (root, total)
    }

    /// The canonical spelling of `s`: representative class, folded parity.
    pub fn canonical(&self, s: ClassSignal) -> ClassSignal {
        let (root, flip) = self.find(s.class() as u32);
        ClassSignal::new(root as usize, s.is_complemented() ^ flip)
    }

    fn canonical_mut(&mut self, s: ClassSignal) -> ClassSignal {
        let (root, flip) = self.find_mut(s.class() as u32);
        ClassSignal::new(root as usize, s.is_complemented() ^ flip)
    }

    /// Canonicalizes a majority triple: canonicalizes and sorts the
    /// children, applies the Ω.M trivial-majority rules, and
    /// polarity-normalizes the result.
    pub fn canonicalize(&self, children: [ClassSignal; 3]) -> Canon {
        let mut cs = children.map(|c| self.canonical(c));
        cs.sort_unstable();
        let [a, b, c] = cs;
        // Ω.M: ⟨x x y⟩ = x. Sorted order puts equal signals adjacent.
        if a == b {
            return Canon::Simplified(a);
        }
        if b == c {
            return Canon::Simplified(b);
        }
        // Ω.M: ⟨x x̄ y⟩ = y. Complement pairs are adjacent after sorting
        // (the complement bit is the LSB of the packed representation).
        if a == !b {
            return Canon::Simplified(c);
        }
        if b == !c {
            return Canon::Simplified(a);
        }
        // Constant folding beyond the pair rules: ⟨0 1 x⟩ = x is already
        // covered (0 = !1 shares the constant class). Nothing else folds.
        // Polarity normalization (Ω.I): of ⟨a b c⟩ and ⟨ā b̄ c̄⟩ keep the
        // lexicographically smaller key and push the complement outward.
        let mut flipped = [!a, !b, !c];
        flipped.sort_unstable();
        if flipped < cs {
            Canon::Node(flipped, true)
        } else {
            Canon::Node(cs, false)
        }
    }

    /// Adds (or finds) the majority of three signals, returning its value.
    pub fn add(&mut self, children: [ClassSignal; 3]) -> ClassSignal {
        self.work += 1;
        match self.canonicalize(children) {
            Canon::Simplified(s) => s,
            Canon::Node(key, flip) => {
                let node = ENode::Maj(key);
                if let Some(&found) = self.memo.get(&node) {
                    return self.canonical_mut(found).complement_if(flip);
                }
                let sig = self.new_class(node);
                self.memo.insert(node, sig);
                for child in key {
                    let root = child.class();
                    self.classes[root].parents.push(node);
                }
                sig.complement_if(flip)
            }
        }
    }

    /// Asserts that two signals denote the same Boolean function, merging
    /// their e-classes. Returns `true` if the merge changed anything.
    ///
    /// The lower class id becomes the representative, which keeps merge
    /// results (and everything downstream: iteration order, extraction,
    /// byte-identical output) deterministic.
    pub fn union(&mut self, a: ClassSignal, b: ClassSignal) -> bool {
        self.work += 1;
        let ca = self.canonical_mut(a);
        let cb = self.canonical_mut(b);
        if ca.class() == cb.class() {
            // Same class: either already equal, or an (impossible, for
            // sound rules) x = x̄ contradiction we refuse to record.
            debug_assert_eq!(
                ca.is_complemented(),
                cb.is_complemented(),
                "union would merge a class with its own complement"
            );
            return false;
        }
        let relative = ca.is_complemented() ^ cb.is_complemented();
        let (root, other) = if ca.class() < cb.class() {
            (ca.class(), cb.class())
        } else {
            (cb.class(), ca.class())
        };
        self.parent[other] = root as u32;
        self.parity[other] = relative;
        let moved = std::mem::take(&mut self.classes[other]);
        for (node, par) in moved.nodes {
            self.classes[root].nodes.push((node, par ^ relative));
        }
        self.classes[root].parents.extend(moved.parents);
        self.dirty.push(root as u32);
        self.unions += 1;
        true
    }

    /// Restores the congruence invariant after a batch of unions: parents
    /// of merged classes are re-canonicalized and re-memoized, merging any
    /// classes that collide. Loops until no class is dirty.
    pub fn rebuild(&mut self) {
        while !self.dirty.is_empty() {
            let mut todo = std::mem::take(&mut self.dirty);
            todo.sort_unstable();
            todo.dedup();
            for id in todo {
                let (root, _) = self.find_mut(id);
                self.repair(root);
            }
        }
    }

    fn repair(&mut self, root: u32) {
        let mut parents = std::mem::take(&mut self.classes[root as usize].parents);
        // Adds and repairs register parents without deduplication (cheap
        // writes); the worklist is deduplicated here, once per repair —
        // without this, union-heavy rebuilds go quadratic in the
        // accumulated duplicates.
        parents.sort_unstable();
        parents.dedup();
        let mut kept: Vec<ENode> = Vec::with_capacity(parents.len());
        for node in parents {
            self.work += 1;
            let Some(old_sig) = self.memo.remove(&node) else {
                // Already re-canonicalized through another merged child.
                continue;
            };
            let old_sig = self.canonical_mut(old_sig);
            let ENode::Maj(children) = node else {
                unreachable!("leaves are never parents")
            };
            match self.canonicalize(children) {
                Canon::Simplified(s) => {
                    // The node collapsed under the new equalities: its
                    // class *is* the simplified signal.
                    self.union(old_sig, s);
                }
                Canon::Node(key, flip) => {
                    let canon = ENode::Maj(key);
                    // Maj(key) = old value of the node, complemented by
                    // the normalization flip.
                    let value = old_sig.complement_if(flip);
                    if let Some(&existing) = self.memo.get(&canon) {
                        let existing = self.canonical_mut(existing);
                        self.union(existing, value);
                    } else {
                        self.memo.insert(canon, value);
                        for child in key {
                            let (croot, _) = self.find_mut(child.class() as u32);
                            self.classes[croot as usize].parents.push(canon);
                        }
                    }
                    kept.push(canon);
                }
            }
        }
        let (new_root, _) = self.find_mut(root);
        self.classes[new_root as usize].parents.extend(kept);
    }

    /// The e-nodes of class `id` (must be a root), re-canonicalized and
    /// deduplicated, each paired with its parity relative to the class
    /// representative. Stale entries that collapsed into an alias of the
    /// class itself are dropped.
    pub fn canonical_nodes(&self, id: u32) -> Vec<ClassNode> {
        debug_assert_eq!(self.find(id).0, id, "canonical_nodes needs a root");
        let mut out: Vec<ClassNode> = Vec::new();
        for &(node, par) in &self.classes[id as usize].nodes {
            let canon = match node {
                ENode::Const => ClassNode::Const(par),
                ENode::Input(i) => ClassNode::Input(i, par),
                ENode::Maj(children) => match self.canonicalize(children) {
                    // A stale entry that collapsed under later equalities.
                    // After a rebuild the collapse target is this very
                    // class (repair unions them), so the alias carries no
                    // information for extraction or matching.
                    Canon::Simplified(_) => continue,
                    Canon::Node(key, flip) => ClassNode::Maj(key, par ^ flip),
                },
            };
            if !out.contains(&canon) {
                out.push(canon);
            }
        }
        out
    }

    /// Every value of `s` spelled as a majority triple: for each majority
    /// e-node in the class, the canonical children complemented so the
    /// triple computes exactly `s` (Ω.I pushes the class parity inward).
    /// At most `limit` views are returned, in deterministic class order.
    pub fn maj_views(&self, s: ClassSignal, limit: usize) -> Vec<[ClassSignal; 3]> {
        let s = self.canonical(s);
        let mut views = Vec::new();
        for node in self.canonical_nodes(s.class() as u32) {
            if let ClassNode::Maj(key, par) = node {
                // rep = Maj(key) ^ par, s = rep ^ s.par
                // ⇒ s = Maj(key each ^ (par ^ s.par)).
                let flip = par ^ s.is_complemented();
                views.push(key.map(|c| c.complement_if(flip)));
                if views.len() >= limit {
                    break;
                }
            }
        }
        views
    }

    /// Ticks the work counter (rule matching charges its traversals here
    /// so the budget reflects matching effort, not just graph mutation).
    pub fn charge(&mut self, ticks: u64) {
        self.work += ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_input_graph() -> (EGraph, [ClassSignal; 3]) {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, b, c);
        mig.add_output("f", m);
        let g = EGraph::from_mig(&mig);
        let inputs = [
            ClassSignal::new(1, false),
            ClassSignal::new(2, false),
            ClassSignal::new(3, false),
        ];
        (g, inputs)
    }

    #[test]
    fn hashconsing_deduplicates_and_is_commutative() {
        let (mut g, [a, b, c]) = three_input_graph();
        let before = g.num_enodes();
        let m1 = g.add([a, b, c]);
        let m2 = g.add([c, a, b]);
        let m3 = g.add([b, c, a]);
        assert_eq!(m1, m2);
        assert_eq!(m2, m3);
        assert_eq!(g.num_enodes(), before, "existing node was reused");
    }

    #[test]
    fn polarity_normalization_shares_a_class_between_a_node_and_its_complement() {
        let (mut g, [a, b, c]) = three_input_graph();
        let m = g.add([a, b, c]);
        let n = g.add([!a, !b, !c]);
        assert_eq!(n, !m, "Ω.I: ⟨ā b̄ c̄⟩ = !⟨a b c⟩ shares one e-class");
    }

    #[test]
    fn trivial_majorities_simplify_at_insertion() {
        let (mut g, [a, b, c]) = three_input_graph();
        assert_eq!(g.add([a, a, b]), a, "⟨x x y⟩ = x");
        assert_eq!(g.add([a, !a, c]), c, "⟨x x̄ y⟩ = y");
        let zero = ClassSignal::new(0, false);
        assert_eq!(g.add([zero, !zero, b]), b, "⟨0 1 x⟩ = x");
    }

    #[test]
    fn union_find_tracks_parity() {
        let (mut g, [a, b, c]) = three_input_graph();
        let m = g.add([a, b, c]);
        // Assert m = !c (nonsense semantically, fine structurally).
        assert!(g.union(m, !c));
        assert!(!g.union(m, !c), "second union is a no-op");
        assert_eq!(g.canonical(m), g.canonical(!c));
        assert_eq!(g.canonical(!m), g.canonical(c));
        // The lower id (c's class) is the representative.
        assert_eq!(g.canonical(m).class(), c.class());
    }

    #[test]
    fn congruence_closes_through_parents() {
        let (mut g, [a, b, c]) = three_input_graph();
        let m1 = g.add([a, b, c]);
        let zero = ClassSignal::new(0, false);
        let d = g.add([a, b, zero]); // some distinct class
        let p1 = g.add([m1, c, zero]);
        let p2 = g.add([d, c, zero]);
        assert_ne!(g.canonical(p1), g.canonical(p2));
        // Asserting m1 = d must, after rebuild, identify the parents too.
        g.union(m1, d);
        g.rebuild();
        assert_eq!(g.canonical(p1), g.canonical(p2));
    }

    #[test]
    fn congruence_closes_with_complement_parity() {
        let (mut g, [a, b, c]) = three_input_graph();
        let zero = ClassSignal::new(0, false);
        let m = g.add([a, b, c]);
        let d = g.add([a, b, zero]);
        let p1 = g.add([m, c, zero]);
        let p2 = g.add([!d, c, zero]);
        // m = !d ⇒ ⟨m c 0⟩ = ⟨d̄ c 0⟩.
        g.union(m, !d);
        g.rebuild();
        assert_eq!(g.canonical(p1), g.canonical(p2));
    }

    #[test]
    fn repair_collapses_parents_that_become_trivial() {
        let (mut g, [a, b, c]) = three_input_graph();
        let zero = ClassSignal::new(0, false);
        let d = g.add([a, b, zero]);
        let p = g.add([d, c, zero]); // ⟨d c 0⟩ = AND(d, c)

        // Assert d = c: the parent becomes ⟨c c 0⟩ = c.
        g.union(d, c);
        g.rebuild();
        assert_eq!(g.canonical(p), g.canonical(c));
    }

    #[test]
    fn maj_views_push_parity_inward() {
        let (mut g, [a, b, c]) = three_input_graph();
        let m = g.add([a, b, c]);
        let views = g.maj_views(!m, 8);
        assert_eq!(views.len(), 1);
        let mut expected = [!a, !b, !c];
        expected.sort_unstable();
        let mut got = views[0];
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn from_mig_maps_outputs_and_inputs() {
        let mut mig = Mig::new();
        let a = mig.add_input("x");
        let b = mig.add_input("y");
        let f = mig.and(a, b);
        mig.add_output("f", !f);
        let g = EGraph::from_mig(&mig);
        assert_eq!(g.input_names(), &["x".to_string(), "y".to_string()]);
        assert_eq!(g.outputs().len(), 1);
        assert!(g.outputs()[0].1.is_complemented());
        // const + 2 inputs + 1 majority
        assert_eq!(g.num_enodes(), 4);
    }

    #[test]
    fn absorb_equivalent_unions_outputs() {
        let mut m1 = Mig::new();
        let a = m1.add_input("a");
        let b = m1.add_input("b");
        let c = m1.add_input("c");
        let f = m1.maj(a, b, c);
        m1.add_output("f", f);
        // Same function, different structure (double complement).
        let mut m2 = Mig::new();
        let a2 = m2.add_input("a");
        let b2 = m2.add_input("b");
        let c2 = m2.add_input("c");
        let f2 = m2.maj(!a2, !b2, !c2);
        m2.add_output("f", !f2);
        let mut g = EGraph::from_mig(&m1);
        let enodes = g.num_enodes();
        assert!(g.absorb_equivalent(&m2));
        // Polarity normalization already identified the two spellings.
        assert_eq!(g.num_enodes(), enodes);
        // Interface mismatch is refused.
        let empty = Mig::new();
        assert!(!g.absorb_equivalent(&empty));
    }
}
